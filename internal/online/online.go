// Package online closes SeqFM's train→serve loop at runtime: the subsystem
// that turns the offline training engine (internal/train) and the batched
// inference engine (internal/serve) into one live system that keeps adapting
// to an interaction stream, the deployment reality the sequence-aware
// recommender literature insists on — user preferences drift, so a frozen
// model decays.
//
// The pieces and their contracts:
//
//   - Ingest appends each interaction to a sharded, lock-striped per-user
//     HistoryStore (so the dynamic view of subsequent requests reflects the
//     newest behaviour immediately, before any retraining) and captures the
//     event as a training instance whose history is the user's state at
//     ingest time — exactly the next-item supervision the offline split
//     builds from frozen logs.
//   - A background incremental trainer drains captured events into
//     minibatches and fine-tunes a shadow clone of the model through
//     train.Stepper — the same sharded two-phase-forward engine as offline
//     training, warm-started from the deployed optimizer state. Serving
//     never reads the shadow: the weights an engine snapshot sees are
//     immutable by construction.
//   - Publishing clones the shadow and hot-swaps it into the serve.Engine
//     (RCU generation snapshot), so readers never block and in-flight
//     requests finish on the generation they started with.
//   - Checkpoint writes the shadow + optimizer state + step counter as a
//     self-describing ckpt v2 file; restoring it resumes fine-tuning
//     bit-identically (train.Stepper's restart-exact determinism).
//
// Staleness contract: served scores are always computed from a consistent
// generation (bit-identical to a fresh-tape Score under that generation's
// weights) but may lag Ingest by up to one publish interval; histories, by
// contrast, are read live at request time. Determinism contract: for a fixed
// {Seed, Workers} and the same ingest order, the sequence of published
// weights is bit-reproducible.
package online

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"seqfm/internal/ckpt"
	"seqfm/internal/core"
	"seqfm/internal/data"
	"seqfm/internal/feature"
	"seqfm/internal/obs"
	"seqfm/internal/optim"
	"seqfm/internal/serve"
	"seqfm/internal/train"
	"seqfm/internal/wal"
)

// Defaults for Config's zero fields.
const (
	DefaultBatchSize  = 64
	DefaultMaxPending = 1 << 16
	DefaultInterval   = 250 * time.Millisecond
)

// Config parameterises a Learner. The zero value takes every default.
type Config struct {
	// Train configures the fine-tuning steps: Seed and Workers fix the
	// determinism contract, LR/Negatives/GradClip the optimisation.
	// Train.BatchSize and Train.Epochs are ignored (batching is event-driven
	// here); BatchSize below is the knob.
	Train train.Config
	// BatchSize is the fine-tune minibatch size events are drained into.
	// 0 means DefaultBatchSize.
	BatchSize int
	// MaxPending bounds the buffered event queue; beyond it the oldest
	// events are dropped (counted in Stats.Dropped). 0 means
	// DefaultMaxPending.
	MaxPending int
	// HistoryLen bounds each user's live history. 0 derives 4× the model's
	// MaxSeqLen — enough slack that the dynamic view never truncates early
	// while the store stays O(users · n.).
	HistoryLen int
	// Interval is the background trainer's drain cadence. 0 means
	// DefaultInterval.
	Interval time.Duration
	// MinEvents defers background fine-tuning until at least this many
	// events are pending (a Sync call ignores it). 0 means 1.
	MinEvents int
	// Log, when non-nil, makes the event stream durable: Ingest appends
	// each interaction to this write-ahead log *before* enqueueing it (and
	// returns only once the record is durable under the log's sync policy),
	// and the trainer logs step/drop/publish markers recording exactly which
	// events each minibatch consumed and which generation each publish
	// installed. Together with a ckpt-v2 snapshot carrying its log position,
	// the log makes recovery exactly-once and bit-identical: see ReplayLog.
	// The learner does not close the log.
	Log *wal.Log
}

func (c Config) withDefaults(model *core.Model) Config {
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.MaxPending <= 0 {
		c.MaxPending = DefaultMaxPending
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 4 * model.Config().MaxSeqLen
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 1
	}
	return c
}

// Stats is a snapshot of the learner's counters.
type Stats struct {
	// Ingested counts accepted events; Dropped counts events evicted from a
	// full pending queue before training saw them.
	Ingested, Dropped int64
	// Pending is the current backlog of untrained events.
	Pending int
	// Steps counts applied fine-tune minibatches; Swaps counts published
	// generations.
	Steps, Swaps int64
	// LastLoss is the mean loss of the most recent fine-tune batch.
	LastLoss float64
	// Generation is the serving engine's current generation id.
	Generation uint64
	// HistoryUsers is the number of users with a live history.
	HistoryUsers int
	// BacklogRejects counts whole batches TryIngestBatch refused with
	// ErrBacklog — the admission valve firing, as opposed to Dropped's
	// silent evictions.
	BacklogRejects int64
	// TrainLagSeconds is how long the oldest untrained event has been
	// queued — the train-behind-ingest lag in wall-clock terms (0 when the
	// queue is empty). TrainLagEvents is the same lag in events (== Pending).
	TrainLagSeconds float64
	TrainLagEvents  int

	// Durability state; all zero unless the learner was built with a WAL
	// (Config.Log).

	// LogSeq is the last sequence number appended to the log; LogDurableSeq
	// the last one fsynced. LogSegments counts live segment files.
	LogSeq, LogDurableSeq uint64
	LogSegments           int
	// AppliedSeq is the log sequence number of the last step marker whose
	// training effect is in the current shadow weights — the position a
	// checkpoint taken now would record.
	AppliedSeq uint64
	// SnapshotSeq is the AppliedSeq of the last checkpoint written through
	// this learner; the replay a crash would need covers (SnapshotSeq,
	// LogDurableSeq].
	SnapshotSeq uint64
	// LogFirstSeq is the first sequence number still present in the log — 1
	// until compaction has discarded a prefix.
	LogFirstSeq uint64
	// Epoch is the writer epoch the learner operates under (1 until a
	// promotion or a restored/replayed epoch record raised it).
	Epoch uint64
}

// pendingEvent is one queued training instance plus the WAL sequence number
// of its event record (0 without a WAL). The queue is FIFO and drops only at
// the head, so the queued seqs are always a contiguous ascending range —
// which is why a step marker's "trained through seq X" pins a batch exactly.
type pendingEvent struct {
	inst feature.Instance
	seq  uint64
	// at is the enqueue wall-clock (UnixNano); the head event's age is the
	// train-behind-ingest lag Stats reports.
	at int64
	// ts is the event's origin ingest stamp (unix ms, always the primary's
	// clock: the WAL record's TS on durable and replayed paths, the local
	// clock otherwise). 0 = unknown (pre-stamp log records), in which case
	// the event contributes no freshness observation.
	ts int64
}

// Learner is the online-learning subsystem: one per served model. Its public
// methods are safe for concurrent use.
type Learner struct {
	cfg Config
	ds  *data.Dataset
	eng *serve.Engine

	store *HistoryStore

	// seenMu guards seen, the serving-side exclusion index: one set per
	// user, seeded from the dataset logs and extended at *ingest* time.
	// It is deliberately separate from the trainer's negative-sampling
	// index (which marks events only when they are trained, under
	// trainMu, to keep checkpoint resume bit-exact): exclusion must see
	// an interaction immediately and must never block on — or be lost by
	// — training, so pending events that age out of the bounded live
	// history, or are dropped from a full queue, stay excluded.
	seenMu sync.RWMutex
	seen   []map[int]bool

	// mu guards the pending event queue (the ingest path). The queue is a
	// slice with a head index: drains and drop-oldest advance head instead
	// of memmoving the buffer, so ingest stays O(1) amortised even when the
	// queue is saturated; the live region is compacted down only when the
	// dead prefix outgrows it. With a WAL, mu also serialises the log append
	// against the history-store append, so log order is exactly ingest order
	// — the property replay depends on.
	mu      sync.Mutex
	pending []pendingEvent
	head    int
	// reserved counts queue slots promised to in-flight TryIngestBatch
	// calls that have passed admission but not yet enqueued, so concurrent
	// admitted batches cannot jointly oversubscribe MaxPending.
	reserved int

	// trainMu serialises fine-tuning, publishing and checkpointing (the
	// trainer path). Never held while scoring.
	trainMu sync.Mutex
	model   *core.Model // shadow copy; serving never reads it
	stepper *train.Stepper
	// stepsSincePub counts steps applied since the last publish (guarded by
	// trainMu). Always 0 on a primary after Sync (training and publishing
	// are atomic there), but a follower applies step markers as they arrive
	// and publishes only at its primary's publish markers — a promotion or
	// state checkpoint in that window must know the shadow is ahead of the
	// serving engine.
	stepsSincePub int
	// restoredGen is the published generation a restored self-contained
	// snapshot recorded; with hasState it seeds ReplayLog's publish
	// numbering exactly where full replay's loop would have stood at the
	// cut.
	restoredGen uint64
	hasState    bool

	// walLog, when non-nil, is the durable event log (Config.Log). Replay
	// (ApplyLogRecord/ReplayLog) bypasses it: replayed records are not
	// re-appended, and queue-overflow drops are driven by the logged Drop
	// markers instead of the live MaxPending policy. An atomic pointer
	// because promotion (BecomePrimary) attaches a log to a running
	// follower while Stats/handlers read it concurrently.
	walLog atomic.Pointer[wal.Log]
	// epoch is the writer epoch the learner has observed (wal.RecEpoch,
	// snapshot restore, or promotion); 0 reads as 1 — the pre-cluster
	// implicit epoch.
	epoch atomic.Uint64
	// snapApplied is the snapshot's log position (ckpt File.Log.Seq): step
	// markers at or below it replay without re-training. Fixed at
	// construction.
	snapApplied uint64
	// appliedPos is the position of the last step marker whose effect is in
	// the shadow weights; guarded by trainMu, mirrored in appliedSeq for
	// lock-free Stats.
	appliedPos wal.Pos
	appliedSeq atomic.Uint64
	snapSeq    atomic.Uint64

	// live flips once the learner has seen live traffic (Ingest/Sync) or
	// completed a replay; ReplayLog refuses to run after that — replaying
	// on top of live state would silently double-apply the log.
	live atomic.Bool

	ingested atomic.Int64
	dropped  atomic.Int64
	steps    atomic.Int64
	swaps    atomic.Int64
	lastLoss atomic.Uint64 // math.Float64bits

	// Telemetry: stepHist times stepper.Step minibatches, publishHist the
	// clone+Swap of each publish; backlogRejects counts ErrBacklog
	// admissions refused. Live histograms — register, don't copy.
	stepHist       obs.Histogram
	publishHist    obs.Histogram
	backlogRejects atomic.Int64

	// Freshness lineage. Both histograms observe deltas between two stamps
	// from the *same* (primary) clock, so a follower replaying stamped
	// records reports the identical values as its primary — clock skew never
	// enters the arithmetic. freshTrained is ingest → trained-through (one
	// observation per trained event); freshServable is ingest → servable
	// swap (one per publish, anchored at the newest trained event's stamp).
	// trainedThroughTS is that anchor: the origin stamp of the newest event
	// the shadow has trained on. lineage is a bounded ring of per-generation
	// provenance entries behind GET /v1/debug/freshness.
	freshTrained     obs.Histogram
	freshServable    obs.Histogram
	trainedThroughTS atomic.Int64
	lineageMu        sync.Mutex
	lineage          []LineageEntry

	bg struct {
		sync.Mutex
		stop chan struct{}
		done chan struct{}
	}
}

// NewLearner builds a learner that fine-tunes a shadow clone of m on events
// ingested for ds's feature space and publishes snapshots to eng. m itself
// is never mutated or served: the learner clones it once at construction and
// clones the shadow again on every publish. The loss follows ds.Task. The
// live history store is seeded from ds's interaction logs.
func NewLearner(m *core.Model, ds *data.Dataset, eng *serve.Engine, cfg Config) (*Learner, error) {
	return newLearner(m.Clone(), nil, 0, ds, eng, cfg)
}

// NewLearnerFromCheckpoint restores the shadow model, optimizer state and
// step counter from a ckpt v2 stream, then continues exactly where the saved
// run stopped: subsequent fine-tuning is bit-identical to the run that wrote
// the checkpoint fed the same event batches (fixed {Seed, Workers}). The
// restored model is also published to eng so serving starts on the saved
// weights.
func NewLearnerFromCheckpoint(r io.Reader, ds *data.Dataset, eng *serve.Engine, cfg Config) (*Learner, error) {
	m, f, err := ckpt.Load(r)
	if err != nil {
		return nil, err
	}
	return NewLearnerFromSnapshot(m, f, ds, eng, cfg)
}

// NewLearnerFromSnapshot is NewLearnerFromCheckpoint for an already-decoded
// checkpoint: m must be the model ckpt.Load returned for f. Callers that
// load a checkpoint once for serving (cmd/seqfm-serve) use it to warm-start
// the trainer without re-reading and re-decoding the file. m is cloned for
// the shadow, so it may keep serving as an immutable generation; if the
// engine is not already serving m, the restored weights are published so
// serving starts on the saved state.
//
// The optimizer's moments and step count always come from the snapshot, but
// a non-zero cfg.Train.LR overrides the saved learning rate — the LR is an
// operator choice for the new run, not run state, and silently resuming at
// the old rate would contradict what the caller configured.
func NewLearnerFromSnapshot(m *core.Model, f *ckpt.File, ds *data.Dataset, eng *serve.Engine, cfg Config) (*Learner, error) {
	if m.Config().Space != ds.Space() {
		return nil, fmt.Errorf("online: checkpoint space %+v does not match dataset space %+v",
			m.Config().Space, ds.Space())
	}
	shadow := m.Clone()
	var opt *optim.Adam
	if f.Opt != nil {
		var err error
		if opt, err = optim.NewAdamFromState(shadow.Params(), *f.Opt); err != nil {
			return nil, err
		}
		if cfg.Train.LR > 0 {
			opt.SetLR(cfg.Train.LR)
		}
	}
	l, err := newLearner(shadow, opt, f.Steps, ds, eng, cfg)
	if err != nil {
		return nil, err
	}
	if f.Log != nil {
		// The snapshot is consistent with the log up to this position: a
		// subsequent ReplayLog re-trains only the markers beyond it.
		l.snapApplied = f.Log.Seq
		l.appliedPos = *f.Log
		l.appliedSeq.Store(f.Log.Seq)
	}
	if f.Epoch > 0 {
		l.epoch.Store(f.Epoch)
	}
	if f.State != nil {
		l.restoreState(f.State)
	}
	// Publish the restored weights — unless the engine is already serving
	// exactly this model (the common flow builds the engine from the loaded
	// model and then warm-starts the learner with it). Skipping the
	// redundant publish does more than save an index rebuild: it keeps the
	// engine's generation counter un-advanced, so recovery and follower
	// bootstrap can re-align it to the logged/primary numbering even when
	// that numbering is still small (SwapAs only installs ids that advance
	// the counter).
	if eng.Model() != serve.Scorer(m) {
		l.publish()
	}
	return l, nil
}

func newLearner(shadow *core.Model, opt *optim.Adam, steps int64, ds *data.Dataset, eng *serve.Engine, cfg Config) (*Learner, error) {
	if shadow.Config().Space != ds.Space() {
		return nil, fmt.Errorf("online: model space %+v does not match dataset space %+v",
			shadow.Config().Space, ds.Space())
	}
	cfg = cfg.withDefaults(shadow)
	var optIface optim.Optimizer
	if opt != nil {
		optIface = opt
	}
	stepper, err := train.NewStepper(shadow, ds, ds.Task, optIface, cfg.Train)
	if err != nil {
		return nil, err
	}
	stepper.SetSteps(steps)
	l := &Learner{cfg: cfg, ds: ds, eng: eng, model: shadow, stepper: stepper}
	if cfg.Log != nil {
		l.walLog.Store(cfg.Log)
	}
	// Stats.Steps counts lifetime minibatches on this weight lineage, like
	// stepper.Steps(): a warm start resumes the saved counter, so the number
	// survives restarts the same way the weights do.
	l.steps.Store(steps)
	l.store = NewHistoryStore(0, cfg.HistoryLen)
	l.store.SeedFromDataset(ds)
	l.seen = make([]map[int]bool, ds.NumUsers)
	for u, log := range ds.Users {
		m := make(map[int]bool, len(log))
		for _, it := range log {
			m[it.Object] = true
		}
		l.seen[u] = m
	}
	return l, nil
}

// wlog returns the learner's current write-ahead log (nil without one).
func (l *Learner) wlog() *wal.Log { return l.walLog.Load() }

// Epoch returns the writer epoch the learner operates under — 1 until a
// newer epoch is observed via snapshot restore, replayed epoch record, or
// promotion.
func (l *Learner) Epoch() uint64 {
	if e := l.epoch.Load(); e > 0 {
		return e
	}
	return 1
}

// adoptEpoch raises the observed epoch to e; epochs never move backwards.
func (l *Learner) adoptEpoch(e uint64) {
	for {
		cur := l.epoch.Load()
		if e <= cur || l.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// markSeen records an interaction in the serving-side exclusion index.
func (l *Learner) markSeen(user, object int) {
	l.seenMu.Lock()
	l.seen[user][object] = true
	l.seenMu.Unlock()
}

// Ingest records one interaction: user interacted with object, with the
// task's label (1 for implicit feedback, a rating for regression, a click
// bit for classification). The user's live history is extended immediately;
// the event joins the pending fine-tune queue with the history as it stood
// before this interaction — the same next-item supervision offline training
// uses. Attrs are filled from the dataset's side-information tables.
func (l *Learner) Ingest(user, object int, label float64) error {
	if err := l.checkEvent(user, object); err != nil {
		return err
	}
	seq, _, err := l.ingestOne(user, object, label)
	if err != nil {
		return err
	}
	return l.waitCommitted(seq)
}

// Event is one interaction for batch ingestion.
type Event struct {
	User, Object int
	Label        float64
}

// IngestBatch ingests the events in order and waits for durability once, on
// the last record: under group commit the whole batch stacks into shared
// fsync cycles instead of paying one cycle per event, so a bulk /v1/feedback
// body commits at log bandwidth rather than ack-latency × events. The batch
// is validated up front — a bad event rejects the whole batch before any
// side effects.
func (l *Learner) IngestBatch(events []Event) error {
	for i, ev := range events {
		if err := l.checkEvent(ev.User, ev.Object); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	var last uint64
	for _, ev := range events {
		seq, _, err := l.ingestOne(ev.User, ev.Object, ev.Label)
		if err != nil {
			return err
		}
		last = seq
	}
	return l.waitCommitted(last)
}

// ErrBacklog reports that the learner's pending queue cannot absorb a batch
// without evicting untrained events. It is the admission-control signal: the
// serving layer maps it to 503 + Retry-After, and because the rejection
// happens before any side effect (no WAL record, no history growth, no seen
// mark), the client can retry the identical batch later.
var ErrBacklog = errors.New("online: pending queue backlog full")

// Room returns how many more events the pending queue can absorb before the
// drop-oldest overflow policy starts evicting untrained events. Slots
// promised to in-flight admitted batches count as occupied.
func (l *Learner) Room() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.roomLocked()
}

// roomLocked is Room under an already-held l.mu.
func (l *Learner) roomLocked() int {
	r := l.cfg.MaxPending - (len(l.pending) - l.head) - l.reserved
	if r < 0 {
		r = 0
	}
	return r
}

// TryIngestBatch is IngestBatch behind admission control: the whole batch is
// admitted only if the pending queue has room for every event, and rejected
// with ErrBacklog otherwise — before any side effect. Admission reserves the
// batch's slots under l.mu, so concurrent admitted batches cannot jointly
// oversubscribe MaxPending and trigger the drop-oldest policy that plain
// IngestBatch tolerates. Reservations are conservative: a batch's events
// count against room twice (reservation + queue slot) while it is mid-flight,
// which can shed slightly early under heavy concurrency — the cheap side of
// the error to be on for an overload valve.
func (l *Learner) TryIngestBatch(events []Event) error {
	return l.TryIngestBatchCtx(context.Background(), events)
}

// TryIngestBatchCtx is TryIngestBatch with per-stage tracing: when ctx
// carries an obs.Trace, the batch's summed WAL-append time lands in the
// "wal_append" stage and the group-commit wait in "durable_wait" — the
// write path's answer to "is feedback latency the disk or the queue". The
// context carries only the trace; cancellation is not consulted (the batch
// is already durable or not by the time it could matter).
func (l *Learner) TryIngestBatchCtx(ctx context.Context, events []Event) error {
	for i, ev := range events {
		if err := l.checkEvent(ev.User, ev.Object); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	n := len(events)
	if n == 0 {
		return nil
	}
	l.mu.Lock()
	if l.roomLocked() < n {
		l.mu.Unlock()
		l.backlogRejects.Add(1)
		return ErrBacklog
	}
	l.reserved += n
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.reserved -= n
		l.mu.Unlock()
	}()
	tr := obs.FromContext(ctx)
	var last uint64
	var appendTotal time.Duration
	for _, ev := range events {
		seq, appendDur, err := l.ingestOne(ev.User, ev.Object, ev.Label)
		if err != nil {
			return err
		}
		appendTotal += appendDur
		last = seq
	}
	wlog := l.wlog()
	if wlog != nil {
		tr.Stage("wal_append", appendTotal)
	}
	waitStart := time.Now()
	err := l.waitCommitted(last)
	if wlog != nil && wlog.Policy() != wal.SyncNone {
		tr.Stage("durable_wait", time.Since(waitStart))
	}
	return err
}

// checkEvent validates one interaction's ids.
func (l *Learner) checkEvent(user, object int) error {
	if user < 0 || user >= l.ds.NumUsers {
		return fmt.Errorf("online: user %d outside [0,%d)", user, l.ds.NumUsers)
	}
	if object < 0 || object >= l.ds.NumObjects {
		return fmt.Errorf("online: object %d outside [0,%d)", object, l.ds.NumObjects)
	}
	return nil
}

// ingestOne applies one interaction's side effects and returns its WAL
// sequence number (0 without a WAL) plus the buffered-append duration,
// without waiting for durability.
func (l *Learner) ingestOne(user, object int, label float64) (uint64, time.Duration, error) {
	l.live.Store(true)
	wlog := l.wlog()
	if wlog == nil {
		// Snapshot-and-append atomically (one stripe-lock critical section),
		// so concurrent events for the same user each see exactly the history
		// their predecessors produced.
		inst := l.makeInstance(user, object, label)
		l.markSeen(user, object)
		l.mu.Lock()
		l.enqueueLocked(inst, 0, time.Now().UnixMilli(), true)
		l.mu.Unlock()
		l.ingested.Add(1)
		return 0, 0, nil
	}
	// Durable path: the WAL append, the history-store append and the queue
	// insert happen in one critical section, so the log's record order is
	// exactly the order in which histories grew and the queue filled —
	// replaying the log single-threaded then reconstructs the identical
	// state. Only the *buffered* append happens under the lock; the fsync
	// wait is outside it, so concurrent ingests stack their records into one
	// group commit instead of serialising on the disk.
	rec := wal.Record{Type: wal.RecEvent, User: user, Object: object, Label: label, TS: time.Now().UnixMilli()}
	l.mu.Lock()
	appendStart := time.Now()
	pos, err := wlog.AppendRecord(rec)
	appendDur := time.Since(appendStart)
	if err != nil {
		l.mu.Unlock()
		return 0, appendDur, fmt.Errorf("online: wal append: %w", err)
	}
	inst := l.makeInstance(user, object, label)
	l.markSeen(user, object)
	l.enqueueLocked(inst, pos.Seq, rec.TS, true)
	l.mu.Unlock()
	l.ingested.Add(1)
	return pos.Seq, appendDur, nil
}

// waitCommitted blocks until seq is durable under the log's policy; a no-op
// without a WAL and under SyncNone (which promises nothing beyond the page
// cache — blocking on the OS-flush timer would make the weakest policy the
// slowest ingest path).
func (l *Learner) waitCommitted(seq uint64) error {
	wlog := l.wlog()
	if wlog == nil || seq == 0 || wlog.Policy() == wal.SyncNone {
		return nil
	}
	if err := wlog.WaitDurable(seq); err != nil {
		// The events are applied in memory but their durability is unknown;
		// the caller must treat them as unacknowledged (a recovered process
		// may or may not replay them).
		return fmt.Errorf("online: wal commit: %w", err)
	}
	return nil
}

// makeInstance builds the training instance for one interaction, extending
// the user's live history and snapshotting its prior state as supervision.
func (l *Learner) makeInstance(user, object int, label float64) feature.Instance {
	inst := feature.Instance{
		User:       user,
		Target:     object,
		Hist:       l.store.AppendSnapshot(user, object),
		Label:      label,
		UserAttr:   feature.Pad,
		TargetAttr: feature.Pad,
	}
	if l.ds.NumUserAttrs > 0 {
		inst.UserAttr = l.ds.UserAttr[user]
	}
	if l.ds.NumItemAttrs > 0 {
		inst.TargetAttr = l.ds.ItemAttr[object]
	}
	return inst
}

// enqueueLocked appends one event to the pending queue and, when allowDrop,
// applies the MaxPending overflow policy (logging a Drop marker when the
// learner is durable). During replay drops are disabled — the logged Drop
// markers are replayed instead, so recovery reproduces the original run even
// if MaxPending changed between runs. l.mu must be held.
func (l *Learner) enqueueLocked(inst feature.Instance, seq uint64, ts int64, allowDrop bool) {
	l.pending = append(l.pending, pendingEvent{inst: inst, seq: seq, at: time.Now().UnixNano(), ts: ts})
	if !allowDrop {
		return
	}
	if over := len(l.pending) - l.head - l.cfg.MaxPending; over > 0 {
		from := l.pending[l.head].seq
		through := l.pending[l.head+over-1].seq
		l.head += over // drop oldest by advancing the head: O(1), no memmove
		l.dropped.Add(int64(over))
		if wlog := l.wlog(); wlog != nil {
			// The marker names the exact evicted range: a concurrently
			// in-flight training batch's events are older than From and no
			// longer queued here, but their Step marker lands after this
			// record — replay must not evict them on its behalf. Best-effort
			// append: a lost Drop marker only matters if MaxPending changes
			// before the next recovery; the sticky log error will surface on
			// the next event append regardless.
			_, _ = wlog.AppendRecord(wal.Record{Type: wal.RecDrop, From: from, Through: through})
		}
	}
	l.compactLocked()
}

// compactLocked copies the live queue region down and releases the dead
// prefix once it outgrows the live part — amortised O(1) per event, and the
// backing array stays bounded by ~2×MaxPending. l.mu must be held.
func (l *Learner) compactLocked() {
	if l.head == 0 {
		return
	}
	if live := len(l.pending) - l.head; l.head >= live {
		n := copy(l.pending, l.pending[l.head:])
		// Zero the vacated tail so dropped instances' Hist slices are not
		// pinned by the backing array.
		tail := l.pending[n:]
		for i := range tail {
			tail[i] = pendingEvent{}
		}
		l.pending = l.pending[:n]
		l.head = 0
	}
}

// History returns a copy of the user's live history — the frozen dataset log
// extended by every ingested event. Serving layers use it to default the
// dynamic view of a request.
func (l *Learner) History(user int) []int { return l.store.History(user) }

// Replay applies an already-trained event's side effects — extend the user's
// live history, mark the object seen for negative sampling — without queueing
// it for training. After restoring a checkpoint, replay the events the saved
// run had consumed (they are not checkpoint state; persist them in your own
// event log) to reconstruct the exact history-store and sampler state, which
// is what makes subsequent fine-tuning bit-identical to the original run.
func (l *Learner) Replay(user, object int) error {
	if user < 0 || user >= l.ds.NumUsers {
		return fmt.Errorf("online: user %d outside [0,%d)", user, l.ds.NumUsers)
	}
	if object < 0 || object >= l.ds.NumObjects {
		return fmt.Errorf("online: object %d outside [0,%d)", object, l.ds.NumObjects)
	}
	l.trainMu.Lock()
	l.stepper.MarkSeen(user, object)
	l.trainMu.Unlock()
	l.markSeen(user, object)
	l.store.Append(user, object)
	return nil
}

// TopK ranks candidates for user against their live history on the serving
// engine, filling side attributes from the dataset tables. K <= 0 returns
// every candidate ranked. Out-of-range ids are rejected with an error, like
// Ingest — library callers feed untrusted ids here, and an index panic deep
// in the engine is not an acceptable failure mode for bad input.
func (l *Learner) TopK(user int, candidates []int, k int) ([]serve.Item, error) {
	if user < 0 || user >= l.ds.NumUsers {
		return nil, fmt.Errorf("online: user %d outside [0,%d)", user, l.ds.NumUsers)
	}
	for _, c := range candidates {
		if c < 0 || c >= l.ds.NumObjects {
			return nil, fmt.Errorf("online: candidate %d outside [0,%d)", c, l.ds.NumObjects)
		}
	}
	base := feature.Instance{User: user, Hist: l.store.History(user), UserAttr: feature.Pad, TargetAttr: feature.Pad}
	if l.ds.NumUserAttrs > 0 {
		base.UserAttr = l.ds.UserAttr[user]
	}
	req := serve.TopKRequest{Base: base, Candidates: candidates, K: k}
	if l.ds.NumItemAttrs > 0 {
		req.AttrOf = func(o int) int { return l.ds.ItemAttr[o] }
	}
	return l.eng.TopK(req), nil
}

// Recommend ranks the K best objects for user from the whole catalog on
// the serving engine: ANN retrieval over the current generation's index,
// seen-object exclusion, exact re-rank — all against the user's live
// history, so a just-ingested event steers the very next recommendation
// even before the trainer has republished. The engine must have been built
// with an IndexConfig; because the learner publishes through Swap, every
// generation it ships rebuilds the index from the fine-tuned weights
// automatically. k <= 0 returns every retrieved candidate ranked; n <= 0
// takes the engine default retrieval depth.
//
// Exclusion is complete, not history-bounded: the live history store keeps
// only the last HistoryLen interactions (that bound exists for the dynamic
// view, not for exclusion semantics), so the request also excludes the
// learner's seen index — the dataset logs plus every ingested event, which
// never forgets and never blocks on training — and therefore never
// recommends an object the user interacted with, however long ago.
func (l *Learner) Recommend(user, k, n int) ([]serve.Item, error) {
	if user < 0 || user >= l.ds.NumUsers {
		return nil, fmt.Errorf("online: user %d outside [0,%d)", user, l.ds.NumUsers)
	}
	base := feature.Instance{User: user, Hist: l.store.History(user), UserAttr: feature.Pad, TargetAttr: feature.Pad}
	if l.ds.NumUserAttrs > 0 {
		base.UserAttr = l.ds.UserAttr[user]
	}
	req := serve.RecommendRequest{
		Base:        base,
		K:           k,
		N:           n,
		ExcludeFunc: func(o int) bool { return l.Seen(user, o) },
		ExcludeHint: l.SeenCount(user),
	}
	if l.ds.NumItemAttrs > 0 {
		req.AttrOf = func(o int) int { return l.ds.ItemAttr[o] }
	}
	return l.eng.Recommend(req)
}

// Seen reports whether the user has interacted with the object — dataset
// logs plus every ingested (and replayed) event, recorded at ingest time.
// It reads the learner's own index under a read lock, never the training
// lock: a background fine-tune round (which holds trainMu across training
// and the publish's index rebuild) cannot stall it. Serving layers use it
// as a Recommend exclusion predicate, so the user's full interaction set
// is never materialised per request.
func (l *Learner) Seen(user, object int) bool {
	if user < 0 || user >= l.ds.NumUsers {
		return false
	}
	l.seenMu.RLock()
	s := l.seen[user][object]
	l.seenMu.RUnlock()
	return s
}

// SeenCount returns the size of the user's seen set — the beam-headroom
// hint serving layers pass alongside the Seen predicate.
func (l *Learner) SeenCount(user int) int {
	if user < 0 || user >= l.ds.NumUsers {
		return 0
	}
	l.seenMu.RLock()
	n := len(l.seen[user])
	l.seenMu.RUnlock()
	return n
}

// drain detaches up to max pending events (all of them when max <= 0).
func (l *Learner) drain(max int) []pendingEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.pending) - l.head
	if n == 0 {
		return nil
	}
	if max > 0 && n > max {
		n = max
	}
	batch := make([]pendingEvent, n)
	copy(batch, l.pending[l.head:])
	l.head += n
	l.compactLocked()
	return batch
}

// drainThrough detaches every pending event whose log sequence number is at
// or below through — the replay-side counterpart of drain, sized by a Step
// marker instead of a batch budget.
func (l *Learner) drainThrough(through uint64) []pendingEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for l.head+n < len(l.pending) && l.pending[l.head+n].seq <= through {
		n++
	}
	if n == 0 {
		return nil
	}
	batch := make([]pendingEvent, n)
	copy(batch, l.pending[l.head:])
	l.head += n
	l.compactLocked()
	return batch
}

// removeRange detaches every pending event with sequence number in
// [from, through] — the replay-side form of a Drop marker. Unlike live
// drops, the range need not start at the queue head: events drained by a
// concurrently in-flight training batch were already gone when the live
// drop happened, but during replay they are still queued (their Step marker
// comes later in the log), so the evicted span can sit mid-queue.
func (l *Learner) removeRange(from, through uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	live := l.pending[l.head:]
	lo := 0
	for lo < len(live) && live[lo].seq < from {
		lo++
	}
	hi := lo
	for hi < len(live) && live[hi].seq <= through {
		hi++
	}
	if hi == lo {
		return 0
	}
	n := hi - lo
	kept := append(live[:lo], live[hi:]...)
	// Zero the vacated tail so removed instances' Hist slices are not
	// pinned by the backing array.
	tail := l.pending[l.head+len(kept):]
	for i := range tail {
		tail[i] = pendingEvent{}
	}
	l.pending = l.pending[:l.head+len(kept)]
	return n
}

// Sync drains the backlog as it stood when the call started, fine-tunes the
// shadow model on it in minibatches of Config.BatchSize, and — if any step
// ran — publishes the result to the serving engine. Bounding the round to
// the entry-time backlog keeps Sync terminating (and the publish cadence
// honest) even when ingest outpaces training throughput: later arrivals wait
// for the next round instead of starving publish, Checkpoint and Close. It
// returns the number of events trained on and the mean loss of the last
// minibatch. Safe to call concurrently with traffic and with the background
// loop.
func (l *Learner) Sync() (events int, loss float64) {
	l.live.Store(true)
	l.trainMu.Lock()
	defer l.trainMu.Unlock()
	l.mu.Lock()
	backlog := len(l.pending) - l.head
	l.mu.Unlock()
	for events < backlog {
		max := l.cfg.BatchSize
		if rest := backlog - events; rest < max {
			max = rest
		}
		batch := l.drain(max)
		if len(batch) == 0 {
			break
		}
		loss = l.stepBatch(batch)
		events += len(batch)
	}
	if events > 0 {
		gen := l.publish()
		pubTS := time.Now().UnixMilli()
		dataThrough := l.trainedThroughTS.Load()
		l.notePublished(gen, pubTS, dataThrough)
		if wlog := l.wlog(); wlog != nil {
			// The publish marker is what lets a follower install the same
			// weights under the same generation id, and a recovery replay
			// restore the pre-crash generation numbering. Its stamps let a
			// follower report the identical servable freshness.
			_, _ = wlog.AppendRecord(wal.Record{Type: wal.RecPublish, Gen: gen, TS: pubTS, EventTS: dataThrough})
		}
	}
	return events, loss
}

// stepBatch fine-tunes the shadow on one drained batch and logs its step
// marker. Callers hold trainMu.
func (l *Learner) stepBatch(batch []pendingEvent) float64 {
	// An event becomes "seen" for negative sampling the moment it is
	// trained on — without this, a freshly trending object keeps being
	// drawn as its own users' negative, and the trainer fights the very
	// supervision the stream delivers. Marking here (not at Ingest)
	// keeps the seen index a pure function of the trained sequence, so
	// checkpoint restores that Replay the same events stay bit-exact.
	insts := make([]feature.Instance, len(batch))
	for i, ev := range batch {
		l.stepper.MarkSeen(ev.inst.User, ev.inst.Target)
		insts[i] = ev.inst
	}
	stepStart := time.Now()
	loss := l.stepper.Step(insts)
	l.stepHist.Record(time.Since(stepStart))
	l.lastLoss.Store(math.Float64bits(loss))
	l.steps.Add(1)
	l.stepsSincePub++
	stepTS := time.Now().UnixMilli()
	if wlog := l.wlog(); wlog != nil {
		// "Trained through this event, in this exact batch": the record that
		// makes replayed training bit-identical. Appended after the step so
		// a marker never promises training that did not happen; durability
		// rides the group commit (Checkpoint forces a Sync before recording
		// a position that depends on it). The TS stamp is lag accounting
		// only — followers subtract it from each event's ingest stamp, both
		// primary clocks.
		if pos, err := wlog.AppendRecord(wal.Record{Type: wal.RecStep, Through: batch[len(batch)-1].seq, TS: stepTS}); err == nil {
			l.appliedPos = pos
			l.appliedSeq.Store(pos.Seq)
		}
	}
	l.noteTrained(batch, stepTS)
	return loss
}

// noteTrained records the ingest→trained freshness of one batch against the
// step's wall-clock stamp (both stamps from the primary's clock, on primary
// and follower alike) and advances the trained-through lineage anchor.
// Events or steps without a stamp — pre-stamp logs — contribute nothing:
// freshness is unknown there, not zero.
func (l *Learner) noteTrained(batch []pendingEvent, stepTS int64) {
	if stepTS == 0 {
		return
	}
	anchor := l.trainedThroughTS.Load()
	for _, ev := range batch {
		if ev.ts == 0 {
			continue
		}
		l.freshTrained.Record(time.Duration(stepTS-ev.ts) * time.Millisecond)
		if ev.ts > anchor {
			anchor = ev.ts
		}
	}
	for {
		cur := l.trainedThroughTS.Load()
		if anchor <= cur || l.trainedThroughTS.CompareAndSwap(cur, anchor) {
			break
		}
	}
}

// notePublished records one generation's servable freshness (swap stamp
// minus the trained-through ingest stamp, both primary clocks) and appends
// its lineage entry. Called at publish time on the primary and at publish-
// marker apply time on followers and recovery replays; unknown stamps yield
// a lineage entry with no histogram observation.
func (l *Learner) notePublished(gen uint64, tsMS, eventTS int64) {
	e := LineageEntry{Gen: gen, PublishedAtMS: tsMS, DataThroughMS: eventTS}
	if tsMS > 0 && eventTS > 0 {
		d := time.Duration(tsMS-eventTS) * time.Millisecond
		l.freshServable.Record(d)
		if d < 0 {
			d = 0
		}
		e.FreshnessSeconds = d.Seconds()
		e.FreshnessKnown = true
	}
	l.lineageMu.Lock()
	if n := len(l.lineage); n > 0 && l.lineage[n-1].Gen == gen {
		// Re-publish under the same id (snapshot republish) refreshes the
		// entry instead of duplicating it.
		l.lineage[n-1] = e
	} else {
		l.lineage = append(l.lineage, e)
		if len(l.lineage) > lineageRingSize {
			l.lineage = l.lineage[len(l.lineage)-lineageRingSize:]
		}
	}
	l.lineageMu.Unlock()
}

// publish clones the shadow and hot-swaps it into the engine, returning the
// installed generation. Callers hold trainMu (or are constructing the
// learner).
func (l *Learner) publish() uint64 {
	start := time.Now()
	gen := l.eng.Swap(l.model.Clone())
	l.publishHist.Record(time.Since(start))
	l.swaps.Add(1)
	l.stepsSincePub = 0
	return gen
}

// publishAs installs the shadow under an externally assigned generation id —
// the follower path, aligning replica generation numbering with the
// primary's publish markers. Callers hold trainMu.
func (l *Learner) publishAs(gen uint64) uint64 {
	start := time.Now()
	id := l.eng.SwapAs(l.model.Clone(), gen)
	l.publishHist.Record(time.Since(start))
	l.swaps.Add(1)
	l.stepsSincePub = 0
	return id
}

// Checkpoint writes the shadow model, optimizer state and step counter as a
// ckpt v2 stream. Taken under the training lock, so the snapshot is always a
// consistent post-step state. With a WAL, the stream also records the log
// position the snapshot is consistent with — after first fsyncing the log,
// so the snapshot never references markers a crash could lose.
func (l *Learner) Checkpoint(w io.Writer) error {
	l.trainMu.Lock()
	defer l.trainMu.Unlock()
	adam, _ := l.stepper.Optimizer().(*optim.Adam)
	pos, err := l.checkpointPosLocked()
	if err != nil {
		return err
	}
	if err := ckpt.SaveAt(w, l.model, adam, l.stepper.Steps(), pos); err != nil {
		return err
	}
	if pos != nil {
		l.snapSeq.Store(pos.Seq)
	}
	return nil
}

// CheckpointFile atomically writes Checkpoint's stream to path (temp file +
// rename).
func (l *Learner) CheckpointFile(path string) error {
	l.trainMu.Lock()
	defer l.trainMu.Unlock()
	adam, _ := l.stepper.Optimizer().(*optim.Adam)
	pos, err := l.checkpointPosLocked()
	if err != nil {
		return err
	}
	if err := ckpt.SaveFileAt(path, l.model, adam, l.stepper.Steps(), pos); err != nil {
		return err
	}
	if pos != nil {
		l.snapSeq.Store(pos.Seq)
	}
	return nil
}

// checkpointPosLocked returns the log position the snapshot should record
// (nil without a WAL), fsyncing the log first. trainMu must be held.
func (l *Learner) checkpointPosLocked() (*wal.Pos, error) {
	wlog := l.wlog()
	if wlog == nil {
		return nil, nil
	}
	if err := wlog.Sync(); err != nil {
		return nil, fmt.Errorf("online: checkpoint wal sync: %w", err)
	}
	pos := l.appliedPos
	return &pos, nil
}

// Start launches the background trainer: every Config.Interval it drains the
// backlog (when at least Config.MinEvents are pending), fine-tunes, and
// publishes. Start is idempotent while running.
func (l *Learner) Start() {
	l.bg.Lock()
	defer l.bg.Unlock()
	if l.bg.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	l.bg.stop, l.bg.done = stop, done
	go func() {
		defer close(done)
		ticker := time.NewTicker(l.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				l.mu.Lock()
				n := len(l.pending) - l.head
				l.mu.Unlock()
				if n >= l.cfg.MinEvents {
					l.Sync()
				}
			}
		}
	}()
}

// Close stops the background trainer and runs one final Sync so no accepted
// event is left untrained. The learner remains usable (Ingest/Sync) after
// Close.
func (l *Learner) Close() {
	l.bg.Lock()
	stop, done := l.bg.stop, l.bg.done
	l.bg.stop, l.bg.done = nil, nil
	l.bg.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	l.Sync()
}

// Config returns the learner's resolved configuration — every zero field
// replaced by the default actually in effect.
func (l *Learner) Config() Config { return l.cfg }

// LR returns the learning rate the fine-tuning optimizer is actually using —
// on a warm start this is the checkpoint's saved rate unless the config
// overrode it, so it can differ from Config().Train.LR.
func (l *Learner) LR() float64 {
	l.trainMu.Lock()
	defer l.trainMu.Unlock()
	if adam, ok := l.stepper.Optimizer().(*optim.Adam); ok {
		return adam.LR()
	}
	return 0
}

// Stats returns a snapshot of the learner's counters.
func (l *Learner) Stats() Stats {
	l.mu.Lock()
	pending := len(l.pending) - l.head
	var oldestAt int64
	if pending > 0 {
		oldestAt = l.pending[l.head].at
	}
	l.mu.Unlock()
	st := Stats{
		Ingested:       l.ingested.Load(),
		Dropped:        l.dropped.Load(),
		Pending:        pending,
		Steps:          l.steps.Load(),
		Swaps:          l.swaps.Load(),
		LastLoss:       math.Float64frombits(l.lastLoss.Load()),
		Generation:     l.eng.Generation(),
		HistoryUsers:   l.store.Users(),
		BacklogRejects: l.backlogRejects.Load(),
		TrainLagEvents: pending,
	}
	if oldestAt > 0 {
		if lag := time.Since(time.Unix(0, oldestAt)); lag > 0 {
			st.TrainLagSeconds = lag.Seconds()
		}
	}
	st.Epoch = l.Epoch()
	if wlog := l.wlog(); wlog != nil {
		st.LogSeq = wlog.Pos().Seq
		st.LogDurableSeq = wlog.DurableSeq()
		st.LogSegments = wlog.Segments()
		st.LogFirstSeq = wlog.FirstSeq()
		st.AppliedSeq = l.appliedSeq.Load()
		st.SnapshotSeq = l.snapSeq.Load()
	}
	return st
}

// WAL returns the learner's durable event log, nil when the learner was
// built without one. The replica endpoints read it; the learner never closes
// it.
func (l *Learner) WAL() *wal.Log { return l.wlog() }

// Generation reports the serving engine's published generation.
func (l *Learner) Generation() uint64 { return l.eng.Generation() }

// StepLatency is the live histogram of fine-tune minibatch (stepper.Step)
// durations; PublishLatency times each publish's clone + engine hot-swap
// (including the index rebuild when retrieval is configured). Register them,
// don't copy them.
func (l *Learner) StepLatency() *obs.Histogram    { return &l.stepHist }
func (l *Learner) PublishLatency() *obs.Histogram { return &l.publishHist }

// lineageRingSize bounds the per-generation lineage ring: enough history to
// see a regression's onset across recent swaps, small enough to never matter.
const lineageRingSize = 32

// LineageEntry is one published generation's provenance: when it became
// servable and how fresh the data baked into it was, all in the primary's
// clock. It backs the /v1/debug/freshness breakdown on primary and follower.
type LineageEntry struct {
	Gen uint64 `json:"gen"`
	// PublishedAtMS is the primary wall clock at the swap; DataThroughMS the
	// ingest stamp of the newest event the generation was trained through
	// (0 = unknown: a pre-stamp log, or a generation published before any
	// stamped event trained).
	PublishedAtMS int64 `json:"published_at_ms"`
	DataThroughMS int64 `json:"data_through_ms,omitempty"`
	// FreshnessSeconds is their delta when both stamps are known.
	FreshnessSeconds float64 `json:"freshness_seconds"`
	FreshnessKnown   bool    `json:"freshness_known"`
}

// TrainedFreshness is the live histogram of ingest → trained-through deltas
// (one observation per trained stamped event); ServableFreshness of ingest →
// servable-swap deltas (one per publish). Both are primary-clock-only deltas,
// so primary and follower report identical values. Register them, don't copy
// them.
func (l *Learner) TrainedFreshness() *obs.Histogram  { return &l.freshTrained }
func (l *Learner) ServableFreshness() *obs.Histogram { return &l.freshServable }

// TrainedThroughTS returns the origin ingest stamp (unix ms, primary clock)
// of the newest event the shadow has trained on — 0 when unknown.
func (l *Learner) TrainedThroughTS() int64 { return l.trainedThroughTS.Load() }

// Lineage returns the recent published generations' provenance, oldest
// first.
func (l *Learner) Lineage() []LineageEntry {
	l.lineageMu.Lock()
	defer l.lineageMu.Unlock()
	out := make([]LineageEntry, len(l.lineage))
	copy(out, l.lineage)
	return out
}
