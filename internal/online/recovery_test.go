package online

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seqfm/internal/core"
	"seqfm/internal/data"
	"seqfm/internal/feature"
	"seqfm/internal/serve"
	"seqfm/internal/train"
	"seqfm/internal/wal"
)

// walOpts keeps group-commit latency negligible in tests.
func walOpts() wal.Options {
	return wal.Options{FlushInterval: 200 * time.Microsecond}
}

type rcEvent struct{ user, object int }

func makeRCEvents(ds *data.Dataset, seed int64, n int) []rcEvent {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]rcEvent, n)
	for i := range evs {
		evs[i] = rcEvent{rng.Intn(ds.NumUsers), rng.Intn(ds.NumObjects)}
	}
	return evs
}

// driveRun ingests events[from:to] into l, calling Sync at every boundary in
// syncAt (1-based event counts). Returns the checkpoint stream captured at
// snapAfter (0 disables), so the caller can recover from mid-run state.
func driveRun(t *testing.T, l *Learner, events []rcEvent, from, to int, syncAt map[int]bool, snapAfter int) *bytes.Buffer {
	t.Helper()
	var snap *bytes.Buffer
	for i := from; i < to; i++ {
		if err := l.Ingest(events[i].user, events[i].object, 1); err != nil {
			t.Fatal(err)
		}
		if syncAt[i+1] {
			l.Sync()
			if i+1 == snapAfter {
				snap = &bytes.Buffer{}
				if err := l.Checkpoint(snap); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return snap
}

func assertParamsEqual(t *testing.T, a, b *core.Model, label string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j, v := range pa[i].Value.Data {
			if pb[i].Value.Data[j] != v {
				t.Fatalf("%s: param %s[%d]: %v != %v", label, pa[i].Name, j, pb[i].Value.Data[j], v)
			}
		}
	}
}

// TestCrashRecoveryBitIdentical is the acceptance pin: killing a WAL-backed
// learner mid-stream and recovering from snapshot + log-suffix replay must
// reproduce the uninterrupted run exactly — parameters, served scores and
// generation ids — at multiple worker counts, with dropout and negative
// sampling active.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ds := testDataset(t)
			events := makeRCEvents(ds, 777, 60)
			syncAt := map[int]bool{13: true, 26: true, 39: true, 52: true, 60: true}
			cfg := func(log *wal.Log) Config {
				return Config{
					Train:     train.Config{Seed: 19, Workers: workers, LR: 0.03, Negatives: 2},
					BatchSize: 8,
					Log:       log,
				}
			}
			const crashAt, snapAfter = 45, 26

			// Uninterrupted reference run.
			logU, err := wal.Open(filepath.Join(t.TempDir(), "walU"), walOpts())
			if err != nil {
				t.Fatal(err)
			}
			engU := serve.NewEngine(testModel(t, ds, 0.8).Clone(), serve.Config{Workers: 1})
			defer engU.Close()
			lU, err := NewLearner(testModel(t, ds, 0.8), ds, engU, cfg(logU))
			if err != nil {
				t.Fatal(err)
			}
			driveRun(t, lU, events, 0, len(events), syncAt, 0)
			logU.Close()

			// Crashed run: identical prefix, then the process dies. Every
			// Ingest that returned is durable by contract; Close flushes the
			// marker tail the same way the group-commit window would have
			// within FlushInterval.
			dirC := filepath.Join(t.TempDir(), "walC")
			logC, err := wal.Open(dirC, walOpts())
			if err != nil {
				t.Fatal(err)
			}
			engC := serve.NewEngine(testModel(t, ds, 0.8).Clone(), serve.Config{Workers: 1})
			defer engC.Close()
			lC, err := NewLearner(testModel(t, ds, 0.8), ds, engC, cfg(logC))
			if err != nil {
				t.Fatal(err)
			}
			snap := driveRun(t, lC, events, 0, crashAt, syncAt, snapAfter)
			if snap == nil {
				t.Fatal("no snapshot captured")
			}
			logC.Close() // crash

			// Recovery: reopen the log, restore the snapshot, replay the
			// suffix through the normal ingest path, then continue the
			// stream exactly as the uninterrupted run did.
			logR, err := wal.Open(dirC, walOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer logR.Close()
			if logR.Truncated() {
				t.Fatal("clean crash reported a torn tail")
			}
			engR := serve.NewEngine(testModel(t, ds, 0.8).Clone(), serve.Config{Workers: 1})
			defer engR.Close()
			lR, err := NewLearnerFromCheckpoint(bytes.NewReader(snap.Bytes()), ds, engR, cfg(logR))
			if err != nil {
				t.Fatal(err)
			}
			st, err := lR.ReplayLog()
			if err != nil {
				t.Fatal(err)
			}
			if st.Events != crashAt {
				t.Fatalf("replayed %d events, want %d", st.Events, crashAt)
			}
			if st.SkippedSteps == 0 || st.Steps == 0 {
				t.Fatalf("replay should both skip snapshot-covered steps and re-train the suffix: %+v", st)
			}
			driveRun(t, lR, events, crashAt, len(events), syncAt, 0)

			assertParamsEqual(t, lU.model, lR.model, "recovered vs uninterrupted")
			if gu, gr := engU.Generation(), engR.Generation(); gu != gr {
				t.Fatalf("generation diverged: uninterrupted %d, recovered %d", gu, gr)
			}
			inst := feature.Instance{User: 2, Target: 5, Hist: []int{1, 2, 3}, UserAttr: feature.Pad, TargetAttr: feature.Pad}
			if a, b := engU.Score(inst), engR.Score(inst); a != b {
				t.Fatalf("served scores diverge: %v != %v", a, b)
			}
			// The learners agree on durability accounting too.
			su, sr := lU.Stats(), lR.Stats()
			if su.Steps != sr.Steps || su.Ingested != sr.Ingested || su.AppliedSeq != sr.AppliedSeq {
				t.Fatalf("stats diverge: uninterrupted %+v, recovered %+v", su, sr)
			}
		})
	}
}

// TestRecoveryWithoutSnapshotRetrainsWholeLog pins the no-snapshot path: a
// fresh learner replaying the full log from scratch reproduces the original
// run exactly (every step marker re-trains).
func TestRecoveryWithoutSnapshotRetrainsWholeLog(t *testing.T) {
	ds := testDataset(t)
	events := makeRCEvents(ds, 55, 30)
	syncAt := map[int]bool{10: true, 21: true, 30: true}
	mk := func(log *wal.Log) (*Learner, *serve.Engine) {
		eng := serve.NewEngine(testModel(t, ds, 0.9).Clone(), serve.Config{Workers: 1})
		l, err := NewLearner(testModel(t, ds, 0.9), ds, eng, Config{
			Train: train.Config{Seed: 5, Workers: 2, LR: 0.02, Negatives: 1}, BatchSize: 4, Log: log,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l, eng
	}
	dir := filepath.Join(t.TempDir(), "wal")
	log1, err := wal.Open(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	l1, eng1 := mk(log1)
	defer eng1.Close()
	driveRun(t, l1, events, 0, len(events), syncAt, 0)
	log1.Close()

	log2, err := wal.Open(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	l2, eng2 := mk(log2)
	defer eng2.Close()
	st, err := l2.ReplayLog()
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedSteps != 0 || st.Steps == 0 {
		t.Fatalf("full replay stats %+v", st)
	}
	assertParamsEqual(t, l1.model, l2.model, "full-log replay")
	if eng1.Generation() != eng2.Generation() {
		t.Fatalf("generations diverge: %d != %d", eng1.Generation(), eng2.Generation())
	}
}

// TestTornTailRecoveryIsDeterministicAndReported pins the torn-write
// contract end to end: chop the crashed log mid-frame, recover twice — both
// recoveries must agree bit-for-bit with each other, report the same
// recovered position, and leave a fully functional learner.
func TestTornTailRecoveryIsDeterministicAndReported(t *testing.T) {
	ds := testDataset(t)
	events := makeRCEvents(ds, 99, 40)
	syncAt := map[int]bool{11: true, 23: true, 34: true}
	dir := filepath.Join(t.TempDir(), "wal")
	log1, err := wal.Open(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	eng1 := serve.NewEngine(testModel(t, ds, 1).Clone(), serve.Config{Workers: 1})
	defer eng1.Close()
	l1, err := NewLearner(testModel(t, ds, 1), ds, eng1, Config{
		Train: train.Config{Seed: 3, Workers: 1, LR: 0.05, Negatives: 1}, BatchSize: 8, Log: log1,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveRun(t, l1, events, 0, len(events), syncAt, 0)
	log1.Close()

	// Tear the tail mid-frame (the last segment file; skip wal.lock).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tail string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			tail = filepath.Join(dir, e.Name())
		}
	}
	if tail == "" {
		t.Fatal("no segment files")
	}
	info, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	recover := func(wantTorn bool) (*Learner, *wal.Log, ReplayStats, wal.Pos) {
		log, err := wal.Open(dir, walOpts())
		if err != nil {
			t.Fatal(err)
		}
		if log.Truncated() != wantTorn {
			t.Fatalf("Truncated() = %v, want %v", log.Truncated(), wantTorn)
		}
		eng := serve.NewEngine(testModel(t, ds, 1).Clone(), serve.Config{Workers: 1})
		t.Cleanup(eng.Close)
		l, err := NewLearner(testModel(t, ds, 1), ds, eng, Config{
			Train: train.Config{Seed: 3, Workers: 1, LR: 0.05, Negatives: 1}, BatchSize: 8, Log: log,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := l.ReplayLog()
		if err != nil {
			t.Fatal(err)
		}
		return l, log, st, log.Recovered()
	}
	// The first recovery reports the damage and repairs the directory
	// (truncate-at-first-bad-frame); the second — after the first releases
	// the directory lock — starts from the repaired state and must land on
	// the identical position and parameters.
	lA, logA, stA, posA := recover(true)
	logA.Close() // release the single-owner lock for the next recovery
	lB, logB, stB, posB := recover(false)
	defer logB.Close()
	if posA != posB {
		t.Fatalf("recovered positions differ: %+v vs %+v", posA, posB)
	}
	if stA != stB {
		t.Fatalf("replay stats differ: %+v vs %+v", stA, stB)
	}
	if stA.Events >= len(events) {
		t.Fatalf("truncation lost nothing? replayed %d of %d events", stA.Events, len(events))
	}
	assertParamsEqual(t, lA.model, lB.model, "repeated torn-tail recovery")

	// The recovered learner stays fully usable: ingest and train onward.
	if err := lB.Ingest(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if n, _ := lB.Sync(); n == 0 {
		t.Fatal("post-recovery Sync trained nothing")
	}
}

// TestWALDropMarkersReplayQueueOverflow pins the Drop-marker path: a run
// whose queue overflowed (dropping untrained events) replays to the same
// state, even though replay itself never applies the live MaxPending policy.
func TestWALDropMarkersReplayQueueOverflow(t *testing.T) {
	ds := testDataset(t)
	events := makeRCEvents(ds, 31, 30)
	dir := filepath.Join(t.TempDir(), "wal")
	log1, err := wal.Open(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(log *wal.Log) (*Learner, *serve.Engine) {
		eng := serve.NewEngine(testModel(t, ds, 1).Clone(), serve.Config{Workers: 1})
		t.Cleanup(eng.Close)
		l, err := NewLearner(testModel(t, ds, 1), ds, eng, Config{
			Train:      train.Config{Seed: 9, Workers: 1, LR: 0.05, Negatives: 1},
			BatchSize:  4,
			MaxPending: 6, // force overflow drops before the first Sync
			Log:        log,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l, eng
	}
	l1, eng1 := mk(log1)
	for _, ev := range events[:20] {
		if err := l1.Ingest(ev.user, ev.object, 1); err != nil {
			t.Fatal(err)
		}
	}
	l1.Sync()
	for _, ev := range events[20:] {
		if err := l1.Ingest(ev.user, ev.object, 1); err != nil {
			t.Fatal(err)
		}
	}
	l1.Sync()
	if l1.Stats().Dropped == 0 {
		t.Fatal("precondition: no drops happened")
	}
	log1.Close()

	log2, err := wal.Open(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	l2, eng2 := mk(log2)
	st, err := l2.ReplayLog()
	if err != nil {
		t.Fatal(err)
	}
	if st.Drops == 0 {
		t.Fatal("replay applied no drop markers")
	}
	assertParamsEqual(t, l1.model, l2.model, "overflow replay")
	if s1, s2 := l1.Stats(), l2.Stats(); s1.Dropped != s2.Dropped || s1.Steps != s2.Steps {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
	if eng1.Generation() != eng2.Generation() {
		t.Fatalf("generations diverge: %d != %d", eng1.Generation(), eng2.Generation())
	}
}

// TestReplayLogRefusesAfterLiveTraffic pins the misuse guard: replaying
// onto a learner that already ingested or trained would double-apply the
// log, so it must fail loudly instead.
func TestReplayLogRefusesAfterLiveTraffic(t *testing.T) {
	ds := testDataset(t)
	log, err := wal.Open(filepath.Join(t.TempDir(), "wal"), walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	eng := serve.NewEngine(testModel(t, ds, 1).Clone(), serve.Config{Workers: 1})
	defer eng.Close()
	l, err := NewLearner(testModel(t, ds, 1), ds, eng, Config{
		Train: train.Config{Seed: 1, Workers: 1, LR: 0.01, Negatives: 1}, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Ingest(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReplayLog(); err == nil {
		t.Fatal("ReplayLog after live Ingest accepted")
	}

	// A fresh learner replays once; a second replay is refused.
	log2, err := wal.Open(filepath.Join(t.TempDir(), "wal2"), walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	eng2 := serve.NewEngine(testModel(t, ds, 1).Clone(), serve.Config{Workers: 1})
	defer eng2.Close()
	l2, err := NewLearner(testModel(t, ds, 1), ds, eng2, Config{
		Train: train.Config{Seed: 1, Workers: 1, LR: 0.01, Negatives: 1}, Log: log2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.ReplayLog(); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.ReplayLog(); err == nil {
		t.Fatal("second ReplayLog accepted")
	}
}

// TestDropMarkerRacingInFlightStepReplays pins the ordering fix for drops
// that race an in-flight training batch: the trainer drains a batch, a
// concurrent ingest overflows the queue (logging the Drop marker *before*
// the batch's Step marker), and replay must still reconstruct the exact
// state — the Drop's explicit [From, Through] range keeps it from evicting
// the in-flight batch's events.
func TestDropMarkerRacingInFlightStepReplays(t *testing.T) {
	ds := testDataset(t)
	dir := filepath.Join(t.TempDir(), "wal")
	mk := func(log *wal.Log) (*Learner, *serve.Engine) {
		eng := serve.NewEngine(testModel(t, ds, 1).Clone(), serve.Config{Workers: 1})
		t.Cleanup(eng.Close)
		l, err := NewLearner(testModel(t, ds, 1), ds, eng, Config{
			Train:      train.Config{Seed: 13, Workers: 1, LR: 0.05, Negatives: 1},
			BatchSize:  2,
			MaxPending: 4,
			Log:        log,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l, eng
	}
	log1, err := wal.Open(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	l1, eng1 := mk(log1)
	// Two events enter and are drained by the "trainer" — but its Step has
	// not run (no marker yet).
	for i := 0; i < 2; i++ {
		if err := l1.Ingest(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	inFlight := l1.drain(2)
	// Concurrent ingest overflows MaxPending: Drop markers are logged now,
	// sequenced before the in-flight batch's Step marker.
	for i := 0; i < 7; i++ {
		if err := l1.Ingest((i+3)%ds.NumUsers, (i*5)%ds.NumObjects, 1); err != nil {
			t.Fatal(err)
		}
	}
	if l1.Stats().Dropped == 0 {
		t.Fatal("precondition: queue never overflowed")
	}
	// The in-flight batch completes: its Step marker lands after the Drops.
	l1.trainMu.Lock()
	l1.stepBatch(inFlight)
	l1.trainMu.Unlock()
	l1.Sync() // train the remaining queue
	log1.Close()

	log2, err := wal.Open(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	l2, eng2 := mk(log2)
	st, err := l2.ReplayLog()
	if err != nil {
		t.Fatalf("replay failed on drop/step interleaving: %v", err)
	}
	if st.Drops == 0 {
		t.Fatal("no drop markers replayed")
	}
	assertParamsEqual(t, l1.model, l2.model, "drop-race replay")
	s1, s2 := l1.Stats(), l2.Stats()
	if s1.Dropped != s2.Dropped || s1.Steps != s2.Steps || s1.Pending != s2.Pending {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
	if eng1.Generation() != eng2.Generation() {
		t.Fatalf("generations diverge: %d vs %d", eng1.Generation(), eng2.Generation())
	}
}

// TestIngestBatchMatchesSequentialIngest pins the batch path: IngestBatch
// must produce exactly the state (and WAL) of the equivalent sequential
// Ingests, acking the whole batch on one durability wait.
func TestIngestBatchMatchesSequentialIngest(t *testing.T) {
	ds := testDataset(t)
	events := makeRCEvents(ds, 41, 20)
	mk := func(dir string) (*Learner, *serve.Engine, *wal.Log) {
		log, err := wal.Open(dir, walOpts())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { log.Close() })
		eng := serve.NewEngine(testModel(t, ds, 1).Clone(), serve.Config{Workers: 1})
		t.Cleanup(eng.Close)
		l, err := NewLearner(testModel(t, ds, 1), ds, eng, Config{
			Train: train.Config{Seed: 2, Workers: 1, LR: 0.05, Negatives: 1}, BatchSize: 8, Log: log,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l, eng, log
	}
	lSeq, engSeq, logSeq := mk(filepath.Join(t.TempDir(), "a"))
	for _, ev := range events {
		if err := lSeq.Ingest(ev.user, ev.object, 1); err != nil {
			t.Fatal(err)
		}
	}
	lSeq.Sync()

	lBat, engBat, logBat := mk(filepath.Join(t.TempDir(), "b"))
	batch := make([]Event, len(events))
	for i, ev := range events {
		batch[i] = Event{User: ev.user, Object: ev.object, Label: 1}
	}
	if err := lBat.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d, p := logBat.DurableSeq(), logBat.Pos().Seq; d != p {
		t.Fatalf("batch not durable through the tail: durable %d, last %d", d, p)
	}
	lBat.Sync()

	assertParamsEqual(t, lSeq.model, lBat.model, "batch vs sequential ingest")
	if a, b := logSeq.Pos().Seq, logBat.Pos().Seq; a != b {
		t.Fatalf("log lengths differ: %d vs %d", a, b)
	}
	if engSeq.Generation() != engBat.Generation() {
		t.Fatalf("generations differ")
	}
	// A bad event rejects the whole batch before side effects.
	st := lBat.Stats()
	if err := lBat.IngestBatch([]Event{{User: 0, Object: 1, Label: 1}, {User: 999, Object: 0, Label: 1}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if got := lBat.Stats(); got.Ingested != st.Ingested || got.Pending != st.Pending {
		t.Fatalf("failed batch left side effects: %+v vs %+v", got, st)
	}
}
