package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// RecType discriminates the records the online subsystem logs.
type RecType uint8

const (
	// RecEvent is one ingested interaction (user, object, label, ingest
	// timestamp). The event stream is the system of record.
	RecEvent RecType = 1
	// RecStep marks one applied training minibatch: every queued event with
	// sequence number <= Through was consumed by it, in order. Replaying
	// steps at these exact boundaries is what makes recovery bit-identical —
	// the stepper's RNG streams derive from its step counter, so identical
	// batches yield identical parameters.
	RecStep RecType = 2
	// RecDrop marks queue-overflow evictions: every queued event with
	// sequence number in [From, Through] was discarded untrained. The range
	// is explicit — not "everything up to Through" — because a drop can be
	// logged while a drained-but-not-yet-marked training batch is in flight:
	// that batch's events precede From in the log but were no longer queued
	// when the drop happened, and its Step marker lands *after* this record.
	// Replay removes exactly [From, Through] and leaves earlier queued
	// events for their Step marker. Logged so a replay under a different
	// MaxPending still reproduces the original run.
	RecDrop RecType = 3
	// RecPublish marks a hot-swap: the shadow weights as of the preceding
	// steps were published as serving generation Gen. Followers publish at
	// the same marks, which keeps generation numbering aligned across the
	// fleet.
	RecPublish RecType = 4
	// RecEpoch marks a change of writer: a promoted follower opens its own
	// log and appends this record first, claiming the (strictly higher)
	// epoch under which all subsequent records were written. Epoch
	// comparison is the fencing primitive — a deposed primary still
	// appending under its old epoch can never have those records accepted
	// by a replica that has observed a newer one.
	RecEpoch RecType = 5
)

// String names the type as the replication wire format spells it.
func (t RecType) String() string {
	switch t {
	case RecEvent:
		return "event"
	case RecStep:
		return "step"
	case RecDrop:
		return "drop"
	case RecPublish:
		return "publish"
	case RecEpoch:
		return "epoch"
	}
	return fmt.Sprintf("rectype(%d)", int(t))
}

// Record is the decoded form of one log entry — the union of the four
// record types, JSON-tagged because it doubles as the follower log-shipping
// wire format.
type Record struct {
	// Seq is assigned by the log on append; 0 on a record not yet appended.
	Seq  uint64  `json:"seq"`
	Type RecType `json:"type"`

	// Event fields.
	User   int     `json:"user,omitempty"`
	Object int     `json:"object,omitempty"`
	Label  float64 `json:"label,omitempty"`
	// TS is a primary wall-clock stamp in unix milliseconds — the ingest
	// time on an Event, the apply time on a Step, the swap time on a
	// Publish. Replication lag accounting only, never an input to training;
	// 0 means unknown (records written before stamps existed). Freshness
	// deltas are always TS-minus-TS between two primary-origin stamps, so
	// follower clocks never enter the arithmetic.
	TS int64 `json:"ts,omitempty"`

	// Through is the event sequence number a Step or Drop consumed through;
	// From is the first sequence number a Drop evicted.
	Through uint64 `json:"through,omitempty"`
	From    uint64 `json:"from,omitempty"`
	// Gen is the generation id a Publish installed.
	Gen uint64 `json:"gen,omitempty"`
	// EventTS is the ingest stamp (unix milliseconds, primary clock) of the
	// newest event the published generation was trained through — the lineage
	// anchor freshness deltas subtract from. Like TS it is lag accounting
	// only, never a training input. 0 means unknown (pre-stamp log).
	EventTS int64 `json:"event_ts,omitempty"`
	// Epoch is the writer epoch an Epoch record claims.
	Epoch uint64 `json:"epoch,omitempty"`
}

// EncodeRecord renders the record's payload (type byte + type-specific
// body); the Seq field is not encoded — the log's framing implies it.
func EncodeRecord(r Record) []byte {
	buf := make([]byte, 1, 32)
	buf[0] = byte(r.Type)
	switch r.Type {
	case RecEvent:
		buf = binary.AppendUvarint(buf, uint64(r.User))
		buf = binary.AppendUvarint(buf, uint64(r.Object))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Label))
		buf = binary.AppendUvarint(buf, uint64(r.TS))
	case RecStep:
		buf = binary.AppendUvarint(buf, r.Through)
		// Lineage stamp (apply wall clock). Appended unconditionally: the
		// decoder treats it as optional so pre-stamp logs still parse.
		buf = binary.AppendUvarint(buf, uint64(r.TS))
	case RecDrop:
		buf = binary.AppendUvarint(buf, r.From)
		buf = binary.AppendUvarint(buf, r.Through)
	case RecPublish:
		buf = binary.AppendUvarint(buf, r.Gen)
		// Lineage stamps: swap wall clock, then the ingest stamp of the
		// newest event the generation was trained through.
		buf = binary.AppendUvarint(buf, uint64(r.TS))
		buf = binary.AppendUvarint(buf, uint64(r.EventTS))
	case RecEpoch:
		buf = binary.AppendUvarint(buf, r.Epoch)
	}
	return buf
}

// DecodeRecord parses a payload produced by EncodeRecord, stamping it with
// the sequence number the log assigned.
func DecodeRecord(seq uint64, payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: empty record payload at seq %d", seq)
	}
	r := Record{Seq: seq, Type: RecType(payload[0])}
	b := payload[1:]
	fail := func() (Record, error) {
		return Record{}, fmt.Errorf("wal: malformed %s record at seq %d", r.Type, seq)
	}
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, false
		}
		b = b[n:]
		return v, true
	}
	switch r.Type {
	case RecEvent:
		u, ok := uvarint()
		if !ok {
			return fail()
		}
		o, ok := uvarint()
		if !ok {
			return fail()
		}
		if len(b) < 8 {
			return fail()
		}
		label := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		ts, ok := uvarint()
		if !ok {
			return fail()
		}
		r.User, r.Object, r.Label, r.TS = int(u), int(o), label, int64(ts)
	case RecStep:
		v, ok := uvarint()
		if !ok {
			return fail()
		}
		r.Through = v
		// Optional trailing lineage stamp — absent on pre-stamp logs, which
		// decode with TS=0 (freshness unknown, not zero).
		if len(b) > 0 {
			ts, ok := uvarint()
			if !ok {
				return fail()
			}
			r.TS = int64(ts)
		}
	case RecDrop:
		from, ok := uvarint()
		if !ok {
			return fail()
		}
		through, ok := uvarint()
		if !ok {
			return fail()
		}
		if from == 0 || through < from {
			return fail()
		}
		r.From, r.Through = from, through
	case RecPublish:
		v, ok := uvarint()
		if !ok {
			return fail()
		}
		r.Gen = v
		// Optional trailing lineage stamps (swap clock, trained-through
		// ingest stamp) — absent on pre-stamp logs, decoded as 0 = unknown.
		if len(b) > 0 {
			ts, ok := uvarint()
			if !ok {
				return fail()
			}
			r.TS = int64(ts)
			ets, ok := uvarint()
			if !ok {
				return fail()
			}
			r.EventTS = int64(ets)
		}
	case RecEpoch:
		v, ok := uvarint()
		if !ok || v == 0 {
			return fail()
		}
		r.Epoch = v
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d at seq %d", payload[0], seq)
	}
	if len(b) != 0 {
		return fail()
	}
	return r, nil
}

// AppendRecord encodes and appends one typed record without waiting for
// durability (see AppendAsync); callers on an ack path follow up with
// WaitDurable.
func (l *Log) AppendRecord(r Record) (Pos, error) {
	return l.AppendAsync(EncodeRecord(r))
}

// NextRecord reads and decodes the next committed record; io.EOF at the
// durable watermark.
func (r *Reader) NextRecord() (Record, error) {
	payload, pos, err := r.Next()
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	return DecodeRecord(pos.Seq, payload)
}
