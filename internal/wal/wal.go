// Package wal is the durable write-ahead log that turns the online
// subsystem's determinism contract into crash recovery and replication. The
// serving stack's only stochastic state is train.Stepper's step counter (its
// per-step RNG streams are rederived from {Seed, step, worker}), so a log of
// the ingested event stream — plus markers recording exactly which events
// each training step consumed — is a complete recipe for reconstructing the
// learner: replaying the same records from a snapshot is bit-identical to
// having never crashed, and a follower that tails the same log is a
// bit-identical read replica.
//
// The log is a directory of monotonically numbered segment files. Each
// segment starts with a fixed 24-byte header (magic, segment index, first
// record sequence number) and then holds length+CRC32C-framed records:
//
//	[4B length LE][4B crc32c(payload) LE][payload]
//
// Record sequence numbers are global, dense and implicit: the segment header
// carries the first, and every valid frame increments. Segments rotate at
// Options.SegmentBytes; rotation fsyncs the finished segment and the
// directory, so only the tail segment can ever be torn.
//
// Durability is group-commit by default: Append buffers the frame, and a
// dedicated flusher runs fsyncs back to back for as long as records are
// buffered — each fsync covers every record that accumulated while the
// previous one was on the disk, so N concurrent ingests share ~one flush
// per fsync latency instead of paying one each (pipelined group commit, the
// same discipline as etcd's WAL). WaitDurable parks a caller until the
// fsync covering its record completes; the added latency is at most one
// in-flight fsync. SyncEach fsyncs every record inline (the strictest,
// slowest policy; the benchmark baseline) and SyncNone never fsyncs
// explicitly (page-cache durability only; flushed to the OS on the
// FlushInterval/FlushBytes cadence).
//
// Recovery (Open) scans every segment, verifies headers, frame bounds, CRCs
// and sequence continuity, and truncates at the first bad frame — a torn
// tail, a flipped bit or a duplicated segment never panics and never
// silently skips a record; everything before the damage is kept, everything
// after is discarded, and the recovered position is reported.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"seqfm/internal/obs"
)

// Framing constants.
const (
	// segMagic opens every segment file.
	segMagic = "sqfmwal1"
	// segHeaderSize is the fixed segment header: magic + segment index +
	// first record sequence number.
	segHeaderSize = len(segMagic) + 8 + 8
	// frameHeaderSize prefixes every record: payload length + CRC32C.
	frameHeaderSize = 8
	// MaxRecord bounds a record payload; larger lengths in a frame header
	// are treated as corruption.
	MaxRecord = 1 << 20
	// hintEvery is the stride of the in-memory seq→offset index: one Pos
	// per this many records (collected during the recovery scan and as
	// appends happen) lets a reader seek near its target and scan at most
	// hintEvery-1 frames instead of the whole segment — the difference
	// between O(batch) and O(segment) work per follower long-poll.
	hintEvery = 256
)

// Defaults for Options' zero fields.
const (
	DefaultSegmentBytes  = 64 << 20
	DefaultFlushInterval = 2 * time.Millisecond
	DefaultFlushBytes    = 256 << 10
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncGroup batches fsyncs: a dedicated flusher pipelines them back to
	// back while records are buffered, and WaitDurable blocks until the
	// caller's record is covered. The default.
	SyncGroup SyncPolicy = iota
	// SyncEach fsyncs inside every Append — strictest, slowest.
	SyncEach
	// SyncNone flushes to the OS every FlushInterval (or FlushBytes) but
	// never fsyncs; durability is whatever the page cache survives.
	SyncNone
)

// String names the policy as the CLI and BENCH_wal.json spell it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncEach:
		return "each"
	case SyncNone:
		return "none"
	default:
		return "group"
	}
}

// ParsePolicy is String's inverse.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "group":
		return SyncGroup, nil
	case "each":
		return SyncEach, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (group|each|none)", s)
}

// Options parameterises a Log. The zero value takes every default.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this size.
	// 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Policy selects the fsync discipline; the zero value is SyncGroup.
	Policy SyncPolicy
	// FlushInterval is SyncNone's OS-flush cadence (group commit pipelines
	// eagerly and does not wait on a timer). 0 means DefaultFlushInterval.
	FlushInterval time.Duration
	// FlushBytes flushes inline once this many bytes are buffered,
	// bounding buffer growth under any policy. 0 means DefaultFlushBytes.
	FlushBytes int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = DefaultFlushBytes
	}
	return o
}

// Pos locates a record in the log: its global sequence number plus the
// physical (segment, byte offset) address of its frame. Seq is what replay
// and replication reason about; Segment/Offset are operator-facing
// provenance.
type Pos struct {
	Seq     uint64
	Segment uint64
	Offset  int64
}

// segment is one log file's identity.
type segment struct {
	index    uint64
	firstSeq uint64
	path     string
}

// Log is an append-only segmented record log. Append/WaitDurable/readers are
// safe for concurrent use; one process owns a directory at a time.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer
	segs      []segment // every live segment, in order; last is active
	hints     []Pos     // sparse seq→offset index, ascending (every hintEvery-th record)
	seq       uint64    // last assigned sequence number
	segOffset int64     // active segment size including buffered bytes
	pending   int       // buffered bytes awaiting flush
	bootSeq   uint64    // first sequence number when creating a fresh log
	timerOn   bool
	commitCh  chan struct{} // closed and replaced whenever durable advances
	closed    bool
	err       error // first I/O error; sticky

	// flushCh kicks the group-commit flusher (buffered, so kicks coalesce:
	// one token means "there is buffered work", however many appends put it
	// there); flusherDone closes when the flusher exits.
	flushCh     chan struct{}
	flusherDone chan struct{}

	durable atomic.Uint64 // last fsynced (SyncNone: flushed) sequence number

	// Telemetry. fsyncHist times every fsync that advances the durable
	// watermark; lastCommit is how many records the latest such fsync made
	// durable at once (the group-commit batch size — the ratio of ingest
	// throughput to disk fsync rate). Recorded inline with atomics, exposed
	// through FsyncLatency/Fsyncs/AppendedBytes/LastCommitRecords.
	fsyncHist     obs.Histogram
	fsyncs        atomic.Int64
	appendedBytes atomic.Int64
	lastCommit    atomic.Int64

	recovered Pos  // end of valid data found by Open
	truncated bool // Open discarded a bad tail

	// lockFile holds the directory's advisory flock for the life of the
	// log; the kernel releases it on process death, so a crashed owner
	// never wedges a restart.
	lockFile *os.File
}

// Open opens (creating if needed) the log directory, recovers it — scanning
// every segment, verifying headers, frame CRCs and sequence continuity, and
// truncating at the first bad frame — and positions the writer at the end of
// the valid data. The recovered position is available via Recovered, and
// Truncated reports whether a damaged tail was discarded. A compacted log
// (oldest segments removed below a checkpoint) opens normally; FirstSeq
// reports where the surviving records start.
func Open(dir string, opts Options) (*Log, error) {
	return open(dir, opts, 1, false)
}

// OpenAt creates a log in an empty directory whose first record will be
// assigned sequence number firstSeq — the promotion primitive: a follower
// that has applied its primary's log through seq N continues the global
// numbering in a log of its own starting at N+1. A directory that already
// holds segments is rejected (an existing log has its own numbering; use
// Open for that).
func OpenAt(dir string, firstSeq uint64, opts Options) (*Log, error) {
	if firstSeq == 0 {
		return nil, errors.New("wal: sequence numbers start at 1")
	}
	return open(dir, opts, firstSeq, true)
}

func open(dir string, opts Options, firstSeq uint64, mustBeEmpty bool) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts.withDefaults(), bootSeq: firstSeq, commitCh: make(chan struct{})}
	// One process owns a log directory at a time: a second concurrent
	// writer would interleave frames under an independent sequence counter,
	// and the *next* recovery would silently truncate acknowledged data at
	// the resulting mismatch. An advisory flock turns that corruption into
	// a fast, loud startup error — and evaporates with the owner process,
	// so a crash never wedges the restart.
	lf, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lf.Close()
		return nil, fmt.Errorf("wal: %s is locked by another process: %w", dir, err)
	}
	l.lockFile = lf
	if mustBeEmpty {
		segs, err := listSegments(dir)
		if err != nil {
			lf.Close()
			return nil, err
		}
		if len(segs) > 0 {
			lf.Close()
			return nil, fmt.Errorf("wal: %s already holds %d segment(s); OpenAt requires an empty directory", dir, len(segs))
		}
	}
	if err := l.recover(); err != nil {
		lf.Close()
		return nil, err
	}
	l.durable.Store(l.seq)
	l.recovered = Pos{Seq: l.seq, Segment: l.activeSegment().index, Offset: l.segOffset}
	if l.opts.Policy == SyncGroup {
		l.flushCh = make(chan struct{}, 1)
		l.flusherDone = make(chan struct{})
		go l.flusher()
	}
	return l, nil
}

// flusher is the pipelined group-commit loop: as long as appends keep
// buffering records, it runs flush+fsync cycles back to back, each cycle
// committing everything that accumulated during the previous one. Appends
// arriving mid-fsync block only on the mutex, re-kick the channel (the
// buffered token coalesces any number of kicks), and are covered by the
// very next cycle — so the commit latency an Append observes is at most
// one in-flight fsync, and throughput scales with how many appenders share
// each cycle rather than with the disk's fsync rate.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	for range l.flushCh {
		l.groupCycle()
	}
}

// groupCycle runs one pipelined commit cycle: push the buffer to the file
// under the lock, fsync *outside* it — so appenders keep buffering the next
// group while the disk works — then advance the durable watermark. The
// whole cycle's batch is everything that accumulated since the previous
// fsync, which is what makes group-commit throughput scale with the number
// of concurrent appenders instead of the disk's fsync rate.
func (l *Log) groupCycle() {
	l.mu.Lock()
	if l.pending == 0 || l.closed || l.err != nil {
		l.mu.Unlock()
		return
	}
	if err := l.bw.Flush(); err != nil {
		_ = l.fail(err)
		l.mu.Unlock()
		return
	}
	seq, f := l.seq, l.f
	l.pending = 0
	l.mu.Unlock()

	start := time.Now()
	serr := f.Sync()
	elapsed := time.Since(start)

	l.mu.Lock()
	switch {
	case serr != nil && f == l.f && !l.closed:
		_ = l.fail(serr)
	case serr != nil:
		// The segment rotated (or the log closed) mid-fsync and the file
		// was closed under us; rotation fsyncs the sealed segment itself
		// and advances durable, so the error is benign and the watermark
		// is already correct.
	case seq > l.durable.Load():
		l.fsyncHist.Record(elapsed)
		l.fsyncs.Add(1)
		l.lastCommit.Store(int64(seq - l.durable.Load()))
		l.durable.Store(seq)
		close(l.commitCh)
		l.commitCh = make(chan struct{})
	}
	l.mu.Unlock()
}

// kickFlusher schedules a group-commit cycle; the buffered channel makes it
// non-blocking and idempotent.
func (l *Log) kickFlusher() {
	select {
	case l.flushCh <- struct{}{}:
	default:
	}
}

// listSegments returns the directory's segment files sorted by index.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx uint64
		if _, err := fmt.Sscanf(e.Name(), "%016d.wal", &idx); err != nil || segName(idx) != e.Name() {
			continue
		}
		segs = append(segs, segment{index: idx, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

func segName(index uint64) string { return fmt.Sprintf("%016d.wal", index) }

// recover scans the directory and leaves the log positioned for appending
// after the last valid record.
func (l *Log) recover() error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return l.createSegment(1, l.bootSeq)
	}
	var (
		valid    []segment
		lastSeq  uint64
		validEnd int64
	)
	for i := range segs {
		s := &segs[i]
		firstSeq, end, nrecs, hints, ok, err := scanSegment(s.path, s.index)
		if err != nil {
			return err
		}
		// A segment is a valid continuation only if its header parses, its
		// embedded index matches its filename, and its first sequence number
		// continues the previous segment exactly. A duplicated or stale tail
		// segment fails here and is discarded with everything after it.
		if firstSeq == 0 || (len(valid) > 0 && firstSeq != lastSeq+1) {
			l.truncated = true
			for _, drop := range segs[i:] {
				if rmErr := os.Remove(drop.path); rmErr != nil {
					return fmt.Errorf("wal: drop invalid segment: %w", rmErr)
				}
			}
			break
		}
		s.firstSeq = firstSeq
		valid = append(valid, *s)
		l.hints = append(l.hints, hints...)
		lastSeq = firstSeq + nrecs - 1
		if nrecs == 0 {
			lastSeq = firstSeq - 1
		}
		validEnd = end
		if !ok {
			// Bad frame inside this segment: truncate it here and discard
			// every later segment.
			l.truncated = true
			if err := os.Truncate(s.path, end); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			for _, drop := range segs[i+1:] {
				if rmErr := os.Remove(drop.path); rmErr != nil {
					return fmt.Errorf("wal: drop invalid segment: %w", rmErr)
				}
			}
			break
		}
	}
	if len(valid) == 0 {
		// Nothing usable at all (first segment's header was damaged).
		return l.createSegment(1, l.bootSeq)
	}
	l.segs = valid
	l.seq = lastSeq
	l.segOffset = validEnd
	tail := valid[len(valid)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	// Make the truncation itself durable before accepting new appends.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// scanSegment validates one segment file. It returns the header's first
// sequence number (0 if the header is unusable or its index mismatches the
// filename), the byte offset just past the last valid frame, the number of
// valid records, the seq→offset hints for the valid prefix, and ok=false
// when the segment ends in a bad frame (torn, oversized or CRC-mismatched).
func scanSegment(path string, wantIndex uint64) (firstSeq uint64, end int64, nrecs uint64, hints []Pos, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, nil, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, nil, false, fmt.Errorf("wal: %w", err)
	}
	size := info.Size()
	header := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		return 0, 0, 0, nil, false, nil // header torn: segment unusable
	}
	if string(header[:len(segMagic)]) != segMagic {
		return 0, 0, 0, nil, false, nil
	}
	idx := binary.LittleEndian.Uint64(header[len(segMagic):])
	first := binary.LittleEndian.Uint64(header[len(segMagic)+8:])
	if idx != wantIndex || first == 0 {
		return 0, 0, 0, nil, false, nil
	}
	br := bufio.NewReaderSize(f, 1<<16)
	end = int64(segHeaderSize)
	var fh [frameHeaderSize]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return first, end, nrecs, hints, true, nil // clean end
		}
		n := binary.LittleEndian.Uint32(fh[:4])
		if n == 0 || n > MaxRecord || end+frameHeaderSize+int64(n) > size {
			return first, end, nrecs, hints, false, nil // torn or corrupt length
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return first, end, nrecs, hints, false, nil
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(fh[4:]) {
			return first, end, nrecs, hints, false, nil
		}
		if seq := first + nrecs; seq%hintEvery == 0 {
			hints = append(hints, Pos{Seq: seq, Segment: wantIndex, Offset: end})
		}
		nrecs++
		end += frameHeaderSize + int64(n)
	}
}

// createSegment starts a fresh segment file (the caller guarantees index and
// firstSeq continue the log) and fsyncs the directory so the file itself
// survives a crash.
func (l *Log) createSegment(index, firstSeq uint64) error {
	path := filepath.Join(l.dir, segName(index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	header := make([]byte, segHeaderSize)
	copy(header, segMagic)
	binary.LittleEndian.PutUint64(header[len(segMagic):], index)
	binary.LittleEndian.PutUint64(header[len(segMagic)+8:], firstSeq)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	l.segs = append(l.segs, segment{index: index, firstSeq: firstSeq, path: path})
	l.segOffset = int64(segHeaderSize)
	l.seq = firstSeq - 1
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// activeSegment returns the segment currently appended to.
func (l *Log) activeSegment() segment { return l.segs[len(l.segs)-1] }

// Append buffers one record and returns its position, then waits for
// durability per the sync policy: SyncEach returns after its own fsync,
// SyncGroup after the group fsync covering it, SyncNone immediately.
func (l *Log) Append(payload []byte) (Pos, error) {
	pos, err := l.AppendAsync(payload)
	if err != nil {
		return pos, err
	}
	if l.opts.Policy == SyncGroup {
		if err := l.WaitDurable(pos.Seq); err != nil {
			return pos, err
		}
	}
	return pos, nil
}

// AppendAsync buffers one record and returns its position without waiting
// for durability (SyncEach still fsyncs inline). Callers that must not block
// inside their own critical section append here and WaitDurable after
// releasing it — the log preserves append order, which is what makes a
// replayed sequence match the live one.
func (l *Log) AppendAsync(payload []byte) (Pos, error) {
	if len(payload) == 0 || len(payload) > MaxRecord {
		return Pos{}, fmt.Errorf("wal: record size %d outside (0,%d]", len(payload), MaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Pos{}, errors.New("wal: log closed")
	}
	if l.err != nil {
		return Pos{}, l.err
	}
	if l.segOffset >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return Pos{}, err
		}
	}
	var fh [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(fh[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fh[4:], crc32.Checksum(payload, castagnoli))
	if _, err := l.bw.Write(fh[:]); err != nil {
		return Pos{}, l.fail(err)
	}
	if _, err := l.bw.Write(payload); err != nil {
		return Pos{}, l.fail(err)
	}
	l.seq++
	pos := Pos{Seq: l.seq, Segment: l.activeSegment().index, Offset: l.segOffset}
	if l.seq%hintEvery == 0 {
		l.hints = append(l.hints, pos)
	}
	l.segOffset += frameHeaderSize + int64(len(payload))
	l.pending += frameHeaderSize + len(payload)
	l.appendedBytes.Add(frameHeaderSize + int64(len(payload)))
	switch l.opts.Policy {
	case SyncEach:
		if err := l.flushLocked(true); err != nil {
			return Pos{}, err
		}
	case SyncGroup:
		if l.pending >= l.opts.FlushBytes {
			// Bound buffer growth inline; the fsync still covers the group.
			if err := l.flushLocked(true); err != nil {
				return Pos{}, err
			}
		} else {
			l.kickFlusher()
		}
	case SyncNone: // flush to the OS on bytes threshold or timer
		if l.pending >= l.opts.FlushBytes {
			if err := l.flushLocked(false); err != nil {
				return Pos{}, err
			}
		} else if !l.timerOn {
			l.timerOn = true
			time.AfterFunc(l.opts.FlushInterval, l.flushTimer)
		}
	}
	return pos, nil
}

// fail records the first I/O error (sticky) and wakes every waiter so they
// observe it instead of blocking forever. l.mu must be held.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
		close(l.commitCh)
		l.commitCh = make(chan struct{})
	}
	return l.err
}

// flushTimer is SyncNone's OS-flush deadline path.
func (l *Log) flushTimer() {
	l.mu.Lock()
	l.timerOn = false
	if !l.closed && l.err == nil && l.pending > 0 {
		_ = l.flushLocked(false)
	}
	l.mu.Unlock()
}

// flushLocked pushes buffered frames to the file (and fsyncs when sync),
// advances the durable watermark and wakes waiters. l.mu must be held.
func (l *Log) flushLocked(sync bool) error {
	if err := l.bw.Flush(); err != nil {
		return l.fail(err)
	}
	if sync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return l.fail(err)
		}
		l.fsyncHist.Record(time.Since(start))
		l.fsyncs.Add(1)
	}
	l.pending = 0
	if l.seq > l.durable.Load() {
		if sync {
			l.lastCommit.Store(int64(l.seq - l.durable.Load()))
		}
		l.durable.Store(l.seq)
		close(l.commitCh)
		l.commitCh = make(chan struct{})
	}
	return nil
}

// rotateLocked finishes the active segment (flush + fsync, regardless of
// policy: a sealed segment must never be torn) and opens the next.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(true); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return l.fail(err)
	}
	next := l.activeSegment().index + 1
	if err := l.createSegment(next, l.seq+1); err != nil {
		return l.fail(err)
	}
	return nil
}

// WaitDurable blocks until every record up to seq is durable (per the
// policy) or the log fails.
func (l *Log) WaitDurable(seq uint64) error {
	for {
		if l.durable.Load() >= seq {
			return nil
		}
		l.mu.Lock()
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		if l.closed {
			l.mu.Unlock()
			return errors.New("wal: log closed")
		}
		if l.durable.Load() >= seq {
			l.mu.Unlock()
			return nil
		}
		ch := l.commitCh
		l.mu.Unlock()
		<-ch
	}
}

// WaitAppend blocks until the durable watermark moves past seq, or the
// timeout elapses, or the log closes. It returns the current watermark —
// the long-poll primitive behind follower log shipping.
func (l *Log) WaitAppend(seq uint64, timeout time.Duration) uint64 {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if d := l.durable.Load(); d > seq {
			return d
		}
		l.mu.Lock()
		if l.closed || l.err != nil {
			l.mu.Unlock()
			return l.durable.Load()
		}
		ch := l.commitCh
		l.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return l.durable.Load()
		}
	}
}

// Sync forces buffered records to disk (an fsync even under SyncNone) —
// called before a checkpoint references the log position.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.err != nil {
		return l.err
	}
	return l.flushLocked(true)
}

// Pos reports the end of the log: Seq is the last appended record's
// sequence number (the next Append gets Seq+1), Segment/Offset the byte
// position one past its frame — where the next frame lands.
func (l *Log) Pos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seq: l.seq, Segment: l.activeSegment().index, Offset: l.segOffset}
}

// DurableSeq returns the last durable sequence number.
func (l *Log) DurableSeq() uint64 { return l.durable.Load() }

// FirstSeq returns the first sequence number still present in the log — 1
// for a never-compacted log opened with Open, higher once Compact has
// removed sealed segments (or for a promotion log created with OpenAt).
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].firstSeq
}

// CompactStats reports what a Compact call removed and where the log now
// starts.
type CompactStats struct {
	Removed  int    // segment files deleted
	FirstSeq uint64 // first sequence number still in the log
}

// Compact removes sealed segments whose records all have sequence numbers
// at or below through — the caller promises a durable checkpoint covers
// them, so replay will never need them again. The active segment and any
// segment straddling the boundary survive, so compaction never loses a
// record above through. Segments are unlinked oldest-first and the
// directory is fsynced once at the end: a crash at any point leaves a valid
// log whose prefix is merely shorter (recovery tolerates a first segment
// starting past seq 1), never a log with a hole.
func (l *Log) Compact(through uint64) (CompactStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return CompactStats{}, errors.New("wal: log closed")
	}
	if l.err != nil {
		return CompactStats{}, l.err
	}
	removed := 0
	for len(l.segs) > 1 && l.segs[1].firstSeq <= through+1 {
		if err := os.Remove(l.segs[0].path); err != nil {
			return CompactStats{Removed: removed, FirstSeq: l.segs[0].firstSeq}, fmt.Errorf("wal: compact: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	first := l.segs[0].firstSeq
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return CompactStats{Removed: removed, FirstSeq: first}, err
		}
		// Drop hints that point into removed segments.
		keep := 0
		for keep < len(l.hints) && l.hints[keep].Seq < first {
			keep++
		}
		l.hints = append([]Pos(nil), l.hints[keep:]...)
	}
	return CompactStats{Removed: removed, FirstSeq: first}, nil
}

// Segments returns how many live segment files the log spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Recovered reports where Open's scan ended: the last valid record's
// position. Truncated reports whether damaged data was discarded to get
// there.
func (l *Log) Recovered() Pos     { return l.recovered }
func (l *Log) Truncated() bool    { return l.truncated }
func (l *Log) Dir() string        { return l.dir }
func (l *Log) Policy() SyncPolicy { return l.opts.Policy }

// Err returns the log's sticky I/O error, if any — the health signal a
// readiness probe checks: once an append or fsync has failed, every further
// durability promise is void until the process restarts.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// FsyncLatency is the histogram of watermark-advancing fsync durations. The
// returned histogram is live (the log keeps recording into it); register it,
// don't copy it.
func (l *Log) FsyncLatency() *obs.Histogram { return &l.fsyncHist }

// Fsyncs returns how many fsyncs the log has issued.
func (l *Log) Fsyncs() int64 { return l.fsyncs.Load() }

// AppendedBytes returns the total framed bytes appended since Open —
// recovered data is not counted.
func (l *Log) AppendedBytes() int64 { return l.appendedBytes.Load() }

// LastCommitRecords returns how many records the most recent durable commit
// covered at once — the live group-commit batch size.
func (l *Log) LastCommitRecords() int64 { return l.lastCommit.Load() }

// Close flushes and fsyncs outstanding records, stops the flusher and
// closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.flushLocked(true)
	l.closed = true
	close(l.commitCh)
	l.commitCh = make(chan struct{})
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = l.fail(cerr)
	}
	l.mu.Unlock()
	if l.flushCh != nil {
		close(l.flushCh)
		<-l.flusherDone
	}
	if cerr := l.lockFile.Close(); err == nil && cerr != nil { // releases the flock
		err = cerr
	}
	return err
}

// segmentFor locates the segment containing seq. ok is false when seq is
// outside the log.
func (l *Log) segmentFor(seq uint64) (segment, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq == 0 || seq > l.seq {
		return segment{}, false
	}
	for i := len(l.segs) - 1; i >= 0; i-- {
		if l.segs[i].firstSeq <= seq {
			return l.segs[i], true
		}
	}
	return segment{}, false
}

// hintFor returns the position of the latest indexed record at or before
// seq, if any.
func (l *Log) hintFor(seq uint64) (Pos, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lo, hi := 0, len(l.hints)
	for lo < hi { // first hint with Seq > seq
		mid := (lo + hi) / 2
		if l.hints[mid].Seq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Pos{}, false
	}
	return l.hints[lo-1], true
}

// Reader iterates committed records in sequence order. It reads only up to
// the log's durable watermark — a record still waiting in the group-commit
// buffer is invisible, so a follower can never apply state its primary could
// lose. Next returns io.EOF at the watermark; the caller may retry after
// WaitAppend. A Reader is not safe for concurrent use.
type Reader struct {
	l       *Log
	f       *os.File
	br      *bufio.Reader
	seg     segment
	nextSeq uint64
	offset  int64
}

// ReaderAt opens a reader positioned at sequence number from (1 reads the
// whole log). from may exceed the durable watermark; the reader simply
// returns io.EOF until the log catches up.
func (l *Log) ReaderAt(from uint64) (*Reader, error) {
	if from == 0 {
		return nil, errors.New("wal: sequence numbers start at 1")
	}
	if first := l.FirstSeq(); from < first {
		// The records are gone, not merely unread: starting later silently
		// would hand the caller a stream with a hole at its head.
		return nil, fmt.Errorf("wal: seq %d predates the log's first surviving record %d (compacted)", from, first)
	}
	return &Reader{l: l, nextSeq: from}, nil
}

// open positions the reader's file handle at r.nextSeq, which must be
// durable. The sparse hint index bounds the skip-scan to under hintEvery
// frames, so re-opening a reader deep into a large segment (every follower
// long-poll does) costs O(batch), not O(segment).
func (r *Reader) open() error {
	seg, ok := r.l.segmentFor(r.nextSeq)
	if !ok {
		return fmt.Errorf("wal: seq %d not in log", r.nextSeq)
	}
	startSeq, startOff := seg.firstSeq, int64(segHeaderSize)
	if h, ok := r.l.hintFor(r.nextSeq); ok && h.Segment == seg.index && h.Seq >= startSeq {
		startSeq, startOff = h.Seq, h.Offset
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(startOff, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	r.f, r.br, r.seg, r.offset = f, bufio.NewReaderSize(f, 1<<16), seg, startOff
	// Skip records before the requested sequence number.
	for seq := startSeq; seq < r.nextSeq; seq++ {
		if _, _, err := r.readFrame(); err != nil {
			f.Close()
			r.f = nil
			return fmt.Errorf("wal: seek to seq %d: %w", r.nextSeq, err)
		}
	}
	return nil
}

// readFrame decodes one frame at the current offset; the caller has
// established that a durable record lives there.
func (r *Reader) readFrame() ([]byte, Pos, error) {
	var fh [frameHeaderSize]byte
	if _, err := io.ReadFull(r.br, fh[:]); err != nil {
		return nil, Pos{}, err
	}
	n := binary.LittleEndian.Uint32(fh[:4])
	if n == 0 || n > MaxRecord {
		return nil, Pos{}, fmt.Errorf("bad frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return nil, Pos{}, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(fh[4:]) {
		return nil, Pos{}, errors.New("crc mismatch")
	}
	pos := Pos{Seq: r.nextSeq, Segment: r.seg.index, Offset: r.offset}
	r.offset += frameHeaderSize + int64(n)
	return payload, pos, nil
}

// Next returns the next committed record, or io.EOF once the reader has
// consumed everything durable.
func (r *Reader) Next() ([]byte, Pos, error) {
	if r.nextSeq > r.l.durable.Load() {
		return nil, Pos{}, io.EOF
	}
	if r.f == nil {
		if err := r.open(); err != nil {
			return nil, Pos{}, err
		}
	}
	// The writer may have rotated past this segment: if the durable record
	// we want starts a later segment, advance.
	if seg, ok := r.l.segmentFor(r.nextSeq); ok && seg.index != r.seg.index {
		r.f.Close()
		r.f = nil
		if err := r.open(); err != nil {
			return nil, Pos{}, err
		}
	}
	payload, pos, err := r.readFrame()
	if err != nil {
		return nil, Pos{}, fmt.Errorf("wal: read seq %d: %w", r.nextSeq, err)
	}
	r.nextSeq++
	return payload, pos, nil
}

// Close releases the reader's file handle. The log itself is unaffected.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}
