package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fastOpts keeps group-commit latency negligible in tests.
func fastOpts() Options {
	return Options{FlushInterval: 200 * time.Microsecond}
}

func mustOpen(t testing.TB, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// readAll drains every committed record payload.
func readAll(t testing.TB, l *Log) [][]byte {
	t.Helper()
	rd, err := l.ReaderAt(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var out [][]byte
	for {
		p, pos, err := rd.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(len(out) + 1); pos.Seq != want {
			t.Fatalf("seq %d, want %d", pos.Seq, want)
		}
		out = append(out, p)
	}
}

func TestAppendReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, fastOpts())
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i%17))))
		pos, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if pos.Seq != uint64(i+1) {
			t.Fatalf("seq %d, want %d", pos.Seq, i+1)
		}
		want = append(want, p)
	}
	if l.DurableSeq() != 100 {
		t.Fatalf("durable %d after Append returned", l.DurableSeq())
	}
	got := readAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: %q != %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: clean log, nothing truncated, appends continue the sequence.
	l2 := mustOpen(t, dir, fastOpts())
	if l2.Truncated() {
		t.Fatal("clean log reported truncation")
	}
	if l2.Recovered().Seq != 100 {
		t.Fatalf("recovered seq %d", l2.Recovered().Seq)
	}
	pos, err := l2.Append([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if pos.Seq != 101 {
		t.Fatalf("post-reopen seq %d", pos.Seq)
	}
	if got := readAll(t, l2); len(got) != 101 {
		t.Fatalf("read %d records after reopen", len(got))
	}
	l2.Close()
}

func TestRotationAndRecoveryAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.SegmentBytes = 256 // tiny: force many rotations
	l := mustOpen(t, dir, opts)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 4 {
		t.Fatalf("expected multiple segments, got %d", l.Segments())
	}
	if got := readAll(t, l); len(got) != n {
		t.Fatalf("read %d, want %d", len(got), n)
	}
	l.Close()
	l2 := mustOpen(t, dir, opts)
	if l2.Recovered().Seq != n || l2.Truncated() {
		t.Fatalf("recovered %+v truncated=%v", l2.Recovered(), l2.Truncated())
	}
	if got := readAll(t, l2); len(got) != n {
		t.Fatalf("read %d after recovery", len(got))
	}
	l2.Close()
}

// writeLog writes n records and returns the payload written for seq i+1.
func writeLog(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	l := mustOpen(t, dir, opts)
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// tailSegment returns the path and size of the highest-numbered segment.
func tailSegment(t *testing.T, dir string) (string, int64) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	p := segs[len(segs)-1].path
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, info.Size()
}

func TestRecoveryTruncatesMidFrame(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 50, fastOpts())
	p, size := tailSegment(t, dir)
	// Chop the last 5 bytes: the final frame is torn.
	if err := os.Truncate(p, size-5); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, dir, fastOpts())
	defer l.Close()
	if !l.Truncated() {
		t.Fatal("torn tail not reported")
	}
	if l.Recovered().Seq != 49 {
		t.Fatalf("recovered seq %d, want 49", l.Recovered().Seq)
	}
	got := readAll(t, l)
	if len(got) != 49 {
		t.Fatalf("read %d records", len(got))
	}
	// The log stays appendable and seqs continue from the recovered point.
	pos, err := l.Append([]byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if pos.Seq != 50 {
		t.Fatalf("post-recovery seq %d", pos.Seq)
	}
}

func TestRecoveryStopsAtFlippedPayloadByte(t *testing.T) {
	for _, target := range []string{"payload", "crc"} {
		t.Run(target, func(t *testing.T) {
			dir := t.TempDir()
			writeLog(t, dir, 50, fastOpts())
			p, size := tailSegment(t, dir)
			f, err := os.OpenFile(p, os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			// The last record's frame is 8+13 bytes; flip a byte in its
			// payload or in its CRC field.
			off := size - 4
			if target == "crc" {
				off = size - 13 - 3 // inside the CRC word
			}
			buf := make([]byte, 1)
			if _, err := f.ReadAt(buf, off); err != nil {
				t.Fatal(err)
			}
			buf[0] ^= 0x41
			if _, err := f.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l := mustOpen(t, dir, fastOpts())
			defer l.Close()
			if !l.Truncated() {
				t.Fatal("corruption not reported")
			}
			if l.Recovered().Seq != 49 {
				t.Fatalf("recovered seq %d, want 49", l.Recovered().Seq)
			}
			got := readAll(t, l)
			if len(got) != 49 {
				t.Fatalf("read %d records", len(got))
			}
			for i, g := range got {
				if want := fmt.Sprintf("payload-%05d", i); string(g) != want {
					t.Fatalf("record %d corrupted to %q", i, g)
				}
			}
		})
	}
}

func TestRecoveryRejectsDuplicatedTailSegment(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.SegmentBytes = 256
	writeLog(t, dir, 60, opts)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatal("need multiple segments")
	}
	// Duplicate the tail segment under the next index: its header (embedded
	// index, first seq) contradicts the filename, so recovery must stop at
	// the end of the true tail and discard the impostor.
	tail := segs[len(segs)-1]
	data, err := os.ReadFile(tail.path)
	if err != nil {
		t.Fatal(err)
	}
	dup := filepath.Join(dir, segName(tail.index+1))
	if err := os.WriteFile(dup, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l := mustOpen(t, dir, opts)
	defer l.Close()
	if !l.Truncated() {
		t.Fatal("duplicate segment not reported")
	}
	if l.Recovered().Seq != 60 {
		t.Fatalf("recovered seq %d, want 60", l.Recovered().Seq)
	}
	if got := readAll(t, l); len(got) != 60 {
		t.Fatalf("read %d records", len(got))
	}
	if _, err := os.Stat(dup); !os.IsNotExist(err) {
		t.Fatal("impostor segment not removed")
	}
}

// TestRecoveryFuzzTornTails truncates the log at every byte boundary class
// and at random offsets: recovery must never panic, must keep a strict
// prefix of the written records intact, and must leave the log appendable.
func TestRecoveryFuzzTornTails(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		opts := fastOpts()
		opts.SegmentBytes = 512
		writeLog(t, dir, 80, opts)
		p, size := tailSegment(t, dir)
		cut := int64(rng.Intn(int(size)))
		if err := os.Truncate(p, cut); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("trial %d (cut %d): %v", trial, cut, err)
		}
		got := readAll(t, l)
		if uint64(len(got)) != l.Recovered().Seq {
			t.Fatalf("trial %d: read %d records but recovered seq %d", trial, len(got), l.Recovered().Seq)
		}
		for i, g := range got {
			if want := fmt.Sprintf("payload-%05d", i); string(g) != want {
				t.Fatalf("trial %d: record %d corrupted to %q", trial, i, g)
			}
		}
		if _, err := l.Append([]byte("post")); err != nil {
			t.Fatalf("trial %d: append after recovery: %v", trial, err)
		}
		l.Close()
	}
}

// TestRecoveryFuzzBitFlips flips one random byte anywhere in the log:
// recovery must stop at or before the damage, never serve a corrupted
// payload, and never panic.
func TestRecoveryFuzzBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		opts := fastOpts()
		opts.SegmentBytes = 512
		writeLog(t, dir, 80, opts)
		segs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := segs[rng.Intn(len(segs))]
		data, err := os.ReadFile(s.path)
		if err != nil {
			t.Fatal(err)
		}
		off := rng.Intn(len(data))
		data[off] ^= byte(1 + rng.Intn(255))
		if err := os.WriteFile(s.path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := readAll(t, l)
		if uint64(len(got)) != l.Recovered().Seq {
			t.Fatalf("trial %d: read %d vs recovered %d", trial, len(got), l.Recovered().Seq)
		}
		for i, g := range got {
			if want := fmt.Sprintf("payload-%05d", i); string(g) != want {
				t.Fatalf("trial %d: corrupted record %d served: %q", trial, i, g)
			}
		}
		l.Close()
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, fastOpts())
	defer l.Close()
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				pos, err := l.Append([]byte(fmt.Sprintf("g%d-%03d", g, i)))
				if err != nil {
					errs <- err
					return
				}
				if l.DurableSeq() < pos.Seq {
					errs <- fmt.Errorf("append returned before seq %d durable", pos.Seq)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := readAll(t, l); len(got) != goroutines*per {
		t.Fatalf("read %d records, want %d", len(got), goroutines*per)
	}
}

func TestWaitAppendLongPoll(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, fastOpts())
	defer l.Close()
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	// Timeout path: nothing beyond seq 1 yet.
	start := time.Now()
	if d := l.WaitAppend(1, 20*time.Millisecond); d != 1 {
		t.Fatalf("WaitAppend returned %d", d)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("WaitAppend returned before the timeout with no data")
	}
	// Wake path: a concurrent append releases the waiter.
	done := make(chan uint64, 1)
	go func() { done <- l.WaitAppend(1, 5*time.Second) }()
	time.Sleep(2 * time.Millisecond)
	if _, err := l.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-done:
		if d < 2 {
			t.Fatalf("woke at durable %d", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitAppend never woke")
	}
}

func TestRecordRoundtrip(t *testing.T) {
	recs := []Record{
		{Type: RecEvent, User: 3, Object: 1021, Label: 4.5, TS: 1722300000123},
		{Type: RecEvent, User: 0, Object: 0, Label: 1},
		{Type: RecStep, Through: 917},
		{Type: RecStep, Through: 918, TS: 1722300000456},
		{Type: RecDrop, From: 3, Through: 12},
		{Type: RecPublish, Gen: 42},
		{Type: RecPublish, Gen: 43, TS: 1722300000789, EventTS: 1722300000123},
	}
	dir := t.TempDir()
	l := mustOpen(t, dir, fastOpts())
	defer l.Close()
	for _, r := range recs {
		if _, err := l.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	rd, err := l.ReaderAt(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for i, want := range recs {
		got, err := rd.NextRecord()
		if err != nil {
			t.Fatal(err)
		}
		want.Seq = uint64(i + 1)
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := rd.NextRecord(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestDecodeRecordPreStampCompat pins the backward-compatible frame
// extension: Step and Publish payloads written before lineage stamps existed
// (no trailing uvarints) must decode cleanly with TS/EventTS = 0 — freshness
// unknown, not zero — so old logs replay unchanged.
func TestDecodeRecordPreStampCompat(t *testing.T) {
	// Hand-encode the v-prev payloads exactly as the old writer did.
	oldStep := []byte{byte(RecStep)}
	oldStep = binary.AppendUvarint(oldStep, 917)
	oldPub := []byte{byte(RecPublish)}
	oldPub = binary.AppendUvarint(oldPub, 42)

	step, err := DecodeRecord(7, oldStep)
	if err != nil {
		t.Fatalf("pre-stamp step rejected: %v", err)
	}
	if step.Through != 917 || step.TS != 0 {
		t.Fatalf("pre-stamp step decoded as %+v", step)
	}
	pub, err := DecodeRecord(8, oldPub)
	if err != nil {
		t.Fatalf("pre-stamp publish rejected: %v", err)
	}
	if pub.Gen != 42 || pub.TS != 0 || pub.EventTS != 0 {
		t.Fatalf("pre-stamp publish decoded as %+v", pub)
	}

	// A publish with a swap stamp but no trained-through stamp is malformed:
	// the stamps travel as a pair.
	half := []byte{byte(RecPublish)}
	half = binary.AppendUvarint(half, 42)
	half = binary.AppendUvarint(half, 1722300000789)
	if _, err := DecodeRecord(9, half); err == nil {
		t.Fatal("publish with half a stamp pair accepted")
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},                     // unknown type
		{byte(RecEvent)},         // truncated body
		{byte(RecStep)},          // missing varint
		{byte(RecPublish), 0x80}, // unterminated varint
		append(EncodeRecord(Record{Type: RecStep, Through: 5}), 0xFF), // trailing junk
	}
	for i, c := range cases {
		if _, err := DecodeRecord(1, c); err == nil {
			t.Fatalf("case %d: garbage %v accepted", i, c)
		}
	}
}

func TestReaderTailsLiveLog(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.SegmentBytes = 256
	l := mustOpen(t, dir, opts)
	defer l.Close()
	rd, err := l.ReaderAt(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, _, err := rd.Next(); err != io.EOF {
		t.Fatalf("empty log: %v", err)
	}
	total := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 30; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("r%d-%02d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		total += 30
		n := 0
		for {
			_, pos, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n++
			if pos.Seq > uint64(total) {
				t.Fatalf("read seq %d beyond appended %d", pos.Seq, total)
			}
		}
		if got := total - (total - n) - n; got != 0 {
			t.Fatal("unreachable")
		}
	}
	// After all rounds the reader has consumed everything.
	if _, _, err := rd.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestSyncEachAndNonePolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEach, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := fastOpts()
			opts.Policy = policy
			l := mustOpen(t, dir, opts)
			for i := 0; i < 20; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("p%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if policy == SyncEach && l.DurableSeq() != 20 {
				t.Fatalf("SyncEach durable %d", l.DurableSeq())
			}
			if err := l.Sync(); err != nil { // explicit fsync works under any policy
				t.Fatal(err)
			}
			if got := readAll(t, l); len(got) != 20 {
				t.Fatalf("read %d", len(got))
			}
			l.Close()
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncGroup, SyncEach, SyncNone} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("always"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestOpenRejectsSecondWriter pins the single-owner lock: a second Open of
// a live log directory must fail fast instead of interleaving frames, and
// the lock must evaporate with Close.
func TestOpenRejectsSecondWriter(t *testing.T) {
	dir := t.TempDir()
	l1 := mustOpen(t, dir, fastOpts())
	if _, err := Open(dir, fastOpts()); err == nil {
		t.Fatal("second writer accepted on a locked directory")
	}
	if _, err := l1.Append([]byte("still-mine")); err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, fastOpts())
	if l2.Recovered().Seq != 1 {
		t.Fatalf("recovered seq %d", l2.Recovered().Seq)
	}
	l2.Close()
}

// TestSyncNoneAppendNeverWaits pins the policy contract the online ingest
// path relies on: under SyncNone an append returns at memory speed, never
// parked on the OS-flush timer.
func TestSyncNoneAppendNeverWaits(t *testing.T) {
	opts := Options{Policy: SyncNone, FlushInterval: 200 * time.Millisecond}
	l := mustOpen(t, t.TempDir(), opts)
	defer l.Close()
	start := time.Now()
	for i := 0; i < 100; i++ {
		if _, err := l.Append([]byte("fast")); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("100 SyncNone appends took %v — a flush-timer wait leaked into the append path", el)
	}
}
