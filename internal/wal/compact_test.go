package wal

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func compactOpts() Options {
	// Tiny segments so a short stream spans many files.
	return Options{SegmentBytes: 256, FlushInterval: 100 * time.Microsecond}
}

func appendN(t *testing.T, l *Log, n int) (last uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		pos, err := l.Append([]byte("payload-payload-payload"))
		if err != nil {
			t.Fatal(err)
		}
		last = pos.Seq
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	return last
}

func readSeqs(t *testing.T, l *Log, from uint64) []uint64 {
	t.Helper()
	rd, err := l.ReaderAt(from)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var seqs []uint64
	for {
		_, pos, err := rd.Next()
		if err == io.EOF {
			return seqs
		}
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, pos.Seq)
	}
}

func TestCompactRemovesOnlyCoveredSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	last := appendN(t, l, 100)
	if got := l.FirstSeq(); got != 1 {
		t.Fatalf("FirstSeq %d before compaction", got)
	}

	// Compacting through 0 removes nothing.
	st, err := l.Compact(0)
	if err != nil || st.Removed != 0 || st.FirstSeq != 1 {
		t.Fatalf("Compact(0) = %+v, %v", st, err)
	}

	// Compact through the middle: whole sealed segments below the cut go,
	// every record above the new FirstSeq stays readable, and the suffix is
	// exactly contiguous from FirstSeq through the end.
	through := uint64(60)
	st, err = l.Compact(through)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed == 0 {
		t.Fatal("no segments removed; SegmentBytes too large for the test stream?")
	}
	first := l.FirstSeq()
	if first > through+1 {
		t.Fatalf("compaction removed records above the cut: FirstSeq %d > %d", first, through+1)
	}
	seqs := readSeqs(t, l, first)
	if len(seqs) == 0 || seqs[0] != first || seqs[len(seqs)-1] != last {
		t.Fatalf("suffix [%d..%d], want [%d..%d]", seqs[0], seqs[len(seqs)-1], first, last)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("gap after compaction at %d", seqs[i-1])
		}
	}
	// Reads below FirstSeq must fail loudly, not return silence.
	if _, err := l.ReaderAt(first - 1); err == nil {
		t.Fatal("ReaderAt below FirstSeq succeeded")
	}

	// The active segment never goes, even when fully covered.
	st, err = l.Compact(last)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(readSeqs(t, l, l.FirstSeq())); got == 0 {
		t.Fatal("compacting through the head emptied the log")
	}
}

func TestCompactedLogRecoversAndContinues(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := appendN(t, l, 80)
	if _, err := l.Compact(50); err != nil {
		t.Fatal(err)
	}
	first := l.FirstSeq()
	if first == 1 {
		t.Fatal("compaction removed nothing")
	}
	l.Close()

	// Recovery of a compacted dir: FirstSeq survives, the suffix is intact,
	// and appends continue the dense numbering.
	l2, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.FirstSeq(); got != first {
		t.Fatalf("recovered FirstSeq %d, want %d", got, first)
	}
	if rec := l2.Recovered(); rec.Seq != last {
		t.Fatalf("recovered through %d, want %d", rec.Seq, last)
	}
	pos, err := l2.Append([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if pos.Seq != last+1 {
		t.Fatalf("append after recovery at %d, want %d", pos.Seq, last+1)
	}
}

func TestOpenAtStartsNumberingMidStream(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenAt(dir, 0, compactOpts()); err == nil {
		t.Fatal("OpenAt(0) accepted")
	}
	l, err := OpenAt(dir, 101, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Pos().Seq; got != 100 {
		t.Fatalf("fresh OpenAt(101) position %d, want 100", got)
	}
	pos, err := l.Append([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if pos.Seq != 101 {
		t.Fatalf("first append seq %d, want 101", pos.Seq)
	}
	if got := l.FirstSeq(); got != 101 {
		t.Fatalf("FirstSeq %d, want 101", got)
	}
	appendN(t, l, 30)
	l.Close()

	// A mid-stream log recovers like any other.
	l2, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs := readSeqs(t, l2, 101)
	if len(seqs) != 31 || seqs[0] != 101 {
		t.Fatalf("recovered %d records from %d", len(seqs), seqs[0])
	}

	// OpenAt refuses a non-empty directory — it creates logs, it does not
	// adopt them.
	if _, err := OpenAt(dir, 200, compactOpts()); err == nil {
		t.Fatal("OpenAt over an existing log accepted")
	}
}

func TestCompactSurvivesPartialUnlinkCrash(t *testing.T) {
	// Simulate a crash midway through Compact's oldest-first unlink loop:
	// every prefix of the removal set must leave a recoverable log whose
	// suffix still reads back exactly.
	build := func(t *testing.T) (string, uint64) {
		dir := t.TempDir()
		l, err := Open(dir, compactOpts())
		if err != nil {
			t.Fatal(err)
		}
		last := appendN(t, l, 60)
		l.Close()
		return dir, last
	}
	// Probe how many segments a full compaction would remove.
	probeDir, _ := build(t)
	lp, err := Open(probeDir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	st, err := lp.Compact(40)
	if err != nil {
		t.Fatal(err)
	}
	lp.Close()
	if st.Removed < 2 {
		t.Fatalf("probe removed %d segments; need >= 2 for the crash interleavings", st.Removed)
	}

	for k := 1; k <= st.Removed; k++ {
		dir, last := build(t)
		names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := os.Remove(names[i]); err != nil {
				t.Fatal(err)
			}
		}
		l, err := Open(dir, compactOpts())
		if err != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, err)
		}
		first := l.FirstSeq()
		if first == 1 {
			t.Fatalf("k=%d: FirstSeq did not advance", k)
		}
		seqs := readSeqs(t, l, first)
		if len(seqs) == 0 || seqs[len(seqs)-1] != last {
			t.Fatalf("k=%d: suffix ends at %d, want %d", k, seqs[len(seqs)-1], last)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] != seqs[i-1]+1 {
				t.Fatalf("k=%d: gap after %d", k, seqs[i-1])
			}
		}
		l.Close()
	}
}
