package metrics

// Serving-side latency accounting. The log-bucketed histogram that used to
// live here was promoted to internal/obs when the telemetry registry landed:
// the experiments tier, the traffic harness and the /metrics exposition all
// need the same bucket layout (quantiles cross-checked between harness and
// server only agree when both sides bucket identically), so there is exactly
// one implementation. These aliases keep the original names working for
// callers that predate the registry.

import "seqfm/internal/obs"

// LatencyHist is a concurrency-safe log-bucketed duration histogram — an
// alias of obs.Histogram, the repo's single latency-histogram
// implementation. The zero value is ready to use; Record never allocates or
// blocks, so it can sit on a request hot path.
type LatencyHist = obs.Histogram

// LatencySnapshot is a point-in-time percentile summary of a LatencyHist.
type LatencySnapshot = obs.Snapshot
