package metrics

// Serving-side latency accounting. The offline measures in this package
// score model quality from full prediction vectors; a latency histogram has
// the opposite constraints — millions of concurrent observations, bounded
// memory, quantile reads while writers keep recording. LatencyHist trades
// exactness for that shape: log-spaced buckets with a fixed relative error
// (~10% per step at the default resolution), lock-free recording, and
// quantiles interpolated from a snapshot of the bucket counts.

import (
	"math"
	"sync/atomic"
	"time"
)

// histBucketsPerDecade fixes the bucket resolution: 32 buckets per 10× of
// latency keeps the worst-case quantile error under one bucket step
// (10^(1/32) ≈ 1.075, i.e. ≲7.5%) while the whole histogram — covering
// 1µs..~17min — stays under 3KiB of counters.
const (
	histBucketsPerDecade = 32
	histMinNanos         = 1e3 // 1µs floor; everything faster lands in bucket 0
	histDecades          = 10  // 1µs · 10^10 ≈ 2.8h ceiling
	histBuckets          = histBucketsPerDecade*histDecades + 1
)

// LatencyHist is a concurrency-safe log-bucketed duration histogram. The
// zero value is ready to use; Record never allocates or blocks, so it can
// sit on a request hot path.
type LatencyHist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds, high-water
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= histMinNanos {
		return 0
	}
	i := int(math.Log10(ns/histMinNanos)*histBucketsPerDecade) + 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the upper latency bound of bucket i in nanoseconds.
func bucketUpper(i int) float64 {
	if i == 0 {
		return histMinNanos
	}
	return histMinNanos * math.Pow(10, float64(i)/histBucketsPerDecade)
}

// Record adds one observation.
func (h *LatencyHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	for {
		cur := h.max.Load()
		if d.Nanoseconds() <= cur || h.max.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() int64 { return h.count.Load() }

// Mean returns the mean recorded latency (0 when empty).
func (h *LatencyHist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded latency.
func (h *LatencyHist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the latency at quantile q ∈ [0,1], interpolated within
// the containing bucket (upper-bounded by the observed max). Concurrent
// Records make the read a consistent-enough snapshot, not an exact one —
// the histogram's contract is monitoring, not accounting.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	seen := 0.0
	for i := 0; i < histBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			// Interpolate between the bucket's bounds by the rank's position
			// inside it; bucket 0's lower bound is 0.
			lower := 0.0
			if i > 0 {
				lower = bucketUpper(i - 1)
			}
			upper := bucketUpper(i)
			m := float64(h.max.Load())
			if i == histBuckets-1 && m > upper {
				// The overflow bucket has no log-scale upper bound; the
				// observed max is the honest one.
				upper = m
			}
			if upper > m {
				upper = m
			}
			if upper < lower {
				upper = lower
			}
			frac := (rank - seen) / c
			return time.Duration(lower + (upper-lower)*frac)
		}
		seen += c
	}
	return time.Duration(h.max.Load())
}

// Snapshot returns the conventional serving percentiles in one pass-ish
// read: p50, p95, p99, plus mean, max and count.
func (h *LatencyHist) Snapshot() LatencySnapshot {
	return LatencySnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// LatencySnapshot is a point-in-time percentile summary of a LatencyHist.
type LatencySnapshot struct {
	Count               int64
	Mean, P50, P95, P99 time.Duration
	Max                 time.Duration
}
