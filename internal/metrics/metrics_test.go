package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankOf(t *testing.T) {
	cases := []struct {
		pos  float64
		negs []float64
		want int
	}{
		{5, []float64{1, 2, 3}, 0},
		{2, []float64{1, 3, 5}, 2},
		{0, []float64{}, 0},
		{2, []float64{2, 2}, 2}, // ties count against the model
		{1, []float64{9, 9, 9}, 3},
	}
	for i, c := range cases {
		if got := RankOf(c.pos, c.negs); got != c.want {
			t.Errorf("case %d: RankOf=%d, want %d", i, got, c.want)
		}
	}
}

func TestHRAtK(t *testing.T) {
	ranks := []int{0, 4, 9, 10, 50}
	if got := HRAtK(ranks, 5); got != 0.4 {
		t.Errorf("HR@5=%v", got)
	}
	if got := HRAtK(ranks, 10); got != 0.6 {
		t.Errorf("HR@10=%v", got)
	}
	if got := HRAtK(nil, 5); got != 0 {
		t.Errorf("HR of empty=%v", got)
	}
}

func TestNDCGAtK(t *testing.T) {
	// Rank 0 contributes 1/log2(2)=1, rank 1 contributes 1/log2(3).
	got := NDCGAtK([]int{0, 1}, 5)
	want := (1 + 1/math.Log2(3)) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NDCG=%v, want %v", got, want)
	}
	if NDCGAtK([]int{7}, 5) != 0 {
		t.Error("out-of-K rank should contribute 0")
	}
}

// Property: NDCG@K ≤ HR@K ≤ 1 and both are monotone in K.
func TestRankingMetricBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		ranks := make([]int, n)
		for i := range ranks {
			ranks[i] = rng.Intn(30)
		}
		prevHR, prevNDCG := 0.0, 0.0
		for _, k := range []int{1, 5, 10, 20} {
			hr, ndcg := HRAtK(ranks, k), NDCGAtK(ranks, k)
			if ndcg > hr+1e-12 || hr > 1 || ndcg < prevNDCG-1e-12 || hr < prevHR-1e-12 {
				return false
			}
			prevHR, prevNDCG = hr, ndcg
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCPerfectAndChance(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); got != 1 {
		t.Errorf("perfect AUC=%v", got)
	}
	inverted := []bool{false, false, true, true}
	if got := AUC(scores, inverted); got != 0 {
		t.Errorf("inverted AUC=%v", got)
	}
	if got := AUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Errorf("degenerate AUC=%v", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 by the tie convention.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tied AUC=%v", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// pos scores {3,1}, neg scores {2,0}: pairs (3>2),(3>0),(1<2),(1>0) → 3/4.
	scores := []float64{3, 1, 2, 0}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC=%v, want 0.75", got)
	}
}

// Property: AUC is invariant under any strictly monotone transform of scores.
func TestAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Intn(2) == 0
		}
		a := AUC(scores, labels)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(2*s) + 1
		}
		return math.Abs(AUC(transformed, labels)-a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 4, 3}
	if got := MAE(pred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE=%v", got)
	}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(4.0/3)) > 1e-12 {
		t.Errorf("RMSE=%v", got)
	}
	if RMSE(nil, nil) != 0 || MAE(nil, nil) != 0 {
		t.Error("empty metrics not 0")
	}
}

func TestRRSEConstantPredictorIsOne(t *testing.T) {
	truth := []float64{1, 2, 3, 4, 5}
	mean := 3.0
	pred := []float64{mean, mean, mean, mean, mean}
	if got := RRSE(pred, truth); math.Abs(got-1) > 1e-12 {
		t.Errorf("constant-mean RRSE=%v, want 1", got)
	}
	if got := RRSE(truth, truth); got != 0 {
		t.Errorf("perfect RRSE=%v", got)
	}
	if got := RRSE([]float64{1, 2}, []float64{3, 3}); got != 0 {
		t.Errorf("zero-variance truth RRSE=%v", got)
	}
}

// Property: MAE ≤ RMSE (Jensen) for any inputs.
func TestMAELeqRMSE(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		pred := make([]float64, n)
		truth := make([]float64, n)
		for i := range pred {
			pred[i] = rng.NormFloat64() * 3
			truth[i] = rng.NormFloat64() * 3
		}
		return MAE(pred, truth) <= RMSE(pred, truth)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogLoss(t *testing.T) {
	// Perfectly confident correct predictions have ≈0 loss.
	if got := LogLoss([]float64{1, 0}, []bool{true, false}); got > 1e-9 {
		t.Errorf("perfect log loss=%v", got)
	}
	// p=0.5 everywhere gives ln 2.
	if got := LogLoss([]float64{0.5, 0.5}, []bool{true, false}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("uninformed log loss=%v", got)
	}
	// Confident mistakes are clamped, not infinite.
	if got := LogLoss([]float64{0}, []bool{true}); math.IsInf(got, 0) {
		t.Error("log loss overflowed on confident mistake")
	}
	if LogLoss(nil, nil) != 0 {
		t.Error("empty log loss")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for i, f := range []func(){
		func() { RMSE([]float64{1}, []float64{1, 2}) },
		func() { MAE([]float64{1}, nil) },
		func() { RRSE([]float64{1}, nil) },
		func() { AUC([]float64{1}, nil) },
		func() { LogLoss([]float64{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}
