// Package metrics implements the evaluation measures of §V-C: HR@K and
// NDCG@K for ranking, AUC and RMSE for classification, and MAE and RRSE for
// regression, plus log-loss as a training diagnostic.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// RankOf returns the 0-based rank of the positive score among the negatives:
// the number of negative scores strictly greater than pos, with ties broken
// pessimistically (a tie counts against the model). Rank 0 means the ground
// truth is the top-1 item of the J+1 candidate list (§V-C).
func RankOf(pos float64, negs []float64) int {
	rank := 0
	for _, n := range negs {
		if n >= pos {
			rank++
		}
	}
	return rank
}

// HRAtK returns the hit ratio at K over per-test-case ground truth ranks
// (Eq. 27): the fraction of cases whose rank is within the top K.
func HRAtK(ranks []int, k int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	hits := 0
	for _, r := range ranks {
		if r < k {
			hits++
		}
	}
	return float64(hits) / float64(len(ranks))
}

// NDCGAtK returns the normalised discounted cumulative gain at K over
// ground-truth ranks (Eq. 27). With a single relevant item per case, the
// per-case DCG is 1/log2(rank+2) when the item is in the top K and 0
// otherwise, and the ideal DCG is 1.
func NDCGAtK(ranks []int, k int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range ranks {
		if r < k {
			s += 1 / math.Log2(float64(r)+2)
		}
	}
	return s / float64(len(ranks))
}

// AUC returns the area under the ROC curve for scored binary labels,
// computed with the rank-sum (Mann-Whitney) estimator; ties contribute ½.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: AUC: %d scores vs %d labels", len(scores), len(labels)))
	}
	type sl struct {
		s   float64
		pos bool
	}
	all := make([]sl, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		all[i] = sl{s, labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(all, func(a, b int) bool { return all[a].s < all[b].s })
	// Assign average ranks to ties, then apply the Mann-Whitney formula.
	rankSumPos := 0.0
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		avgRank := float64(i+j-1)/2 + 1 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// RMSE returns the root mean squared error between predictions and truths.
func RMSE(pred, truth []float64) float64 {
	checkLens("RMSE", pred, truth)
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		d := p - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error (Eq. 28).
func MAE(pred, truth []float64) float64 {
	checkLens("MAE", pred, truth)
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		s += math.Abs(p - truth[i])
	}
	return s / float64(len(pred))
}

// RRSE returns the root relative squared error (Eq. 28): the RMSE normalised
// by the standard deviation of the ground truth, so a constant mean
// predictor scores 1.
func RRSE(pred, truth []float64) float64 {
	checkLens("RRSE", pred, truth)
	n := len(truth)
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, t := range truth {
		mean += t
	}
	mean /= float64(n)
	variance := 0.0
	for _, t := range truth {
		d := t - mean
		variance += d * d
	}
	if variance == 0 {
		return 0
	}
	sq := 0.0
	for i, p := range pred {
		d := p - truth[i]
		sq += d * d
	}
	return math.Sqrt(sq / variance)
}

// LogLoss returns the mean binary cross-entropy of probabilistic predictions
// in (0,1) against boolean labels, clamping probabilities to avoid infinite
// loss on confident mistakes.
func LogLoss(prob []float64, labels []bool) float64 {
	if len(prob) != len(labels) {
		panic(fmt.Sprintf("metrics: LogLoss: %d probs vs %d labels", len(prob), len(labels)))
	}
	if len(prob) == 0 {
		return 0
	}
	const eps = 1e-12
	s := 0.0
	for i, p := range prob {
		p = math.Min(math.Max(p, eps), 1-eps)
		if labels[i] {
			s -= math.Log(p)
		} else {
			s -= math.Log(1 - p)
		}
	}
	return s / float64(len(prob))
}

func checkLens(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: %s: %d predictions vs %d truths", op, len(a), len(b)))
	}
}
