package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h.Snapshot())
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	// 1..1000 ms uniformly: p50 ≈ 500ms, p99 ≈ 990ms, within the bucket
	// resolution's ~7.5% relative error.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := time.Duration(float64(c.want) * 0.85)
		hi := time.Duration(float64(c.want) * 1.15)
		if got < lo || got > hi {
			t.Errorf("Quantile(%.2f) = %s, want within [%s, %s]", c.q, got, lo, hi)
		}
	}
	if h.Max() != 1000*time.Millisecond {
		t.Errorf("Max = %s, want 1s", h.Max())
	}
	if mean := h.Mean(); mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Errorf("Mean = %s, want ≈500ms", mean)
	}
}

func TestLatencyHistBounds(t *testing.T) {
	var h LatencyHist
	h.Record(-time.Second) // clamped to 0
	h.Record(0)
	h.Record(100 * time.Hour) // beyond the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(1); q != 100*time.Hour {
		// The top quantile is upper-bounded by the observed max, even though
		// the observation overflowed the last bucket.
		t.Errorf("Quantile(1) = %s, want 100h (observed max)", q)
	}
	if q := h.Quantile(0); q > time.Microsecond {
		t.Errorf("Quantile(0) = %s, want ≤1µs", q)
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	var h LatencyHist
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(1+rng.Intn(1_000_000)) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Quantile(0.5) <= 0 || h.Max() <= 0 {
		t.Fatalf("degenerate snapshot after concurrent records: %+v", h.Snapshot())
	}
}
