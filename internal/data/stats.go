package data

import (
	"fmt"
	"strings"
)

// Stats summarises a dataset the way Table I does.
type Stats struct {
	Name      string
	Task      Task
	Instances int
	Users     int
	Objects   int
	// SparseFeatures is m = m° + m., the total one-hot width of Eq. (1).
	// With no side attributes this equals users + 2·objects, which
	// reproduces the paper's #Feature column exactly for five of the six
	// datasets (Toys differs by ~3% in the paper, likely extra side fields).
	SparseFeatures int
	AvgSeqLen      float64
	MinSeqLen      int
	MaxSeqLen      int
}

// ComputeStats derives Table I statistics from a dataset.
func ComputeStats(d *Dataset) Stats {
	s := Stats{
		Name:           d.Name,
		Task:           d.Task,
		Users:          d.NumUsers,
		Objects:        d.NumObjects,
		SparseFeatures: d.Space().TotalDim(),
		MinSeqLen:      int(^uint(0) >> 1),
	}
	for _, log := range d.Users {
		s.Instances += len(log)
		if len(log) < s.MinSeqLen {
			s.MinSeqLen = len(log)
		}
		if len(log) > s.MaxSeqLen {
			s.MaxSeqLen = len(log)
		}
	}
	if d.NumUsers > 0 {
		s.AvgSeqLen = float64(s.Instances) / float64(d.NumUsers)
	}
	if s.Instances == 0 {
		s.MinSeqLen = 0
	}
	return s
}

// String renders one Table I row.
func (s Stats) String() string {
	return fmt.Sprintf("%-18s %-14s #inst=%-9d #user=%-7d #object=%-7d #feature=%-8d avglen=%.1f",
		s.Name, s.Task, s.Instances, s.Users, s.Objects, s.SparseFeatures, s.AvgSeqLen)
}

// FilterInactive removes users with fewer than minUser interactions and
// objects with fewer than minObject interactions, re-indexing both — the
// paper's preprocessing ("we filter out inactive users with less than 10
// interacted objects and unpopular objects visited by less than 10 users",
// §V-A). Filtering repeats until a fixed point since removing objects can
// drop users below the threshold and vice versa.
func FilterInactive(d *Dataset, minUser, minObject int) *Dataset {
	cur := d
	for {
		objCount := make([]int, cur.NumObjects)
		for _, log := range cur.Users {
			for _, it := range log {
				objCount[it.Object]++
			}
		}
		objMap := make([]int, cur.NumObjects)
		nextObj := 0
		for o, c := range objCount {
			if c >= minObject {
				objMap[o] = nextObj
				nextObj++
			} else {
				objMap[o] = -1
			}
		}

		out := &Dataset{
			Name:       cur.Name,
			Task:       cur.Task,
			NumObjects: nextObj,
		}
		var userAttr []int
		var itemAttr []int
		if cur.NumItemAttrs > 0 {
			itemAttr = make([]int, nextObj)
			for o, m := range objMap {
				if m >= 0 {
					itemAttr[m] = cur.ItemAttr[o]
				}
			}
		}
		changed := nextObj != cur.NumObjects
		for u, log := range cur.Users {
			kept := make([]Interaction, 0, len(log))
			for _, it := range log {
				if m := objMap[it.Object]; m >= 0 {
					it.Object = m
					kept = append(kept, it)
				}
			}
			if len(kept) >= minUser {
				out.Users = append(out.Users, kept)
				if cur.NumUserAttrs > 0 {
					userAttr = append(userAttr, cur.UserAttr[u])
				}
			} else {
				changed = true
			}
		}
		out.NumUsers = len(out.Users)
		out.NumUserAttrs = cur.NumUserAttrs
		out.NumItemAttrs = cur.NumItemAttrs
		out.UserAttr = userAttr
		out.ItemAttr = itemAttr
		if !changed {
			return out
		}
		cur = out
	}
}

// FormatStatsTable renders several datasets as a Table I style block.
func FormatStatsTable(stats []Stats) string {
	var b strings.Builder
	b.WriteString("Task            Dataset             #Instance   #User    #Object  #Feature(Sparse)\n")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-15s %-19s %-11d %-8d %-8d %d\n",
			s.Task, s.Name, s.Instances, s.Users, s.Objects, s.SparseFeatures)
	}
	return b.String()
}
