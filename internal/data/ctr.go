package data

import (
	"fmt"
	"math"
	"math/rand"
)

// CTRConfig drives the synthetic click-log generator standing in for the
// Trivago and Taobao datasets (Table I, classification task).
//
// The generative story encodes the structure the paper attributes to click
// data (§VI-B): "users' clicking behavior is usually motivated by their
// intrinsic long-term preferences, so a relatively larger n. can help". Each
// user carries a static long-term interest distribution over item categories
// plus a session-intent vector — an exponential moving average over the
// categories of recent clicks. The next click mixes both, so the history
// sequence carries real signal at long range (IntentDecay close to 1) or
// short range (smaller IntentDecay).
type CTRConfig struct {
	Name          string
	Seed          int64
	NumUsers      int
	NumLinks      int
	NumCategories int
	MinLen        int
	MaxLen        int
	// PrefCategories is how many categories each user is intrinsically
	// interested in.
	PrefCategories int
	// IntentDecay λ updates the session intent as λ·intent + (1−λ)·e_cat.
	// Larger values give longer memory.
	IntentDecay float64
	// IntentWeight balances session intent against long-term interest when
	// choosing the next category.
	IntentWeight float64
	// Noise is the probability of a uniformly random click.
	Noise float64
}

// Validate reports configuration errors.
func (c CTRConfig) Validate() error {
	switch {
	case c.NumUsers < 1 || c.NumLinks < 2:
		return fmt.Errorf("data: CTR config %q: need >=1 user and >=2 links", c.Name)
	case c.NumCategories < 2 || c.NumCategories > c.NumLinks:
		return fmt.Errorf("data: CTR config %q: categories %d outside [2,%d]", c.Name, c.NumCategories, c.NumLinks)
	case c.MinLen < 3 || c.MaxLen < c.MinLen:
		return fmt.Errorf("data: CTR config %q: bad length range [%d,%d]", c.Name, c.MinLen, c.MaxLen)
	case c.PrefCategories < 1 || c.PrefCategories > c.NumCategories:
		return fmt.Errorf("data: CTR config %q: %d preferred categories of %d", c.Name, c.PrefCategories, c.NumCategories)
	case c.IntentDecay < 0 || c.IntentDecay >= 1:
		return fmt.Errorf("data: CTR config %q: intent decay %v outside [0,1)", c.Name, c.IntentDecay)
	case c.IntentWeight < 0 || c.Noise < 0 || c.Noise > 1:
		return fmt.Errorf("data: CTR config %q: bad intent weight %v or noise %v", c.Name, c.IntentWeight, c.Noise)
	}
	return nil
}

// GenerateCTR builds a deterministic synthetic click log for cfg. Every
// recorded interaction is a click (implicit positive); classification
// training and evaluation pair them with sampled negatives per §IV-B/§V-C.
func GenerateCTR(cfg CTRConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	category := make([]int, cfg.NumLinks)
	members := make([][]int, cfg.NumCategories)
	for l := 0; l < cfg.NumLinks; l++ {
		c := l % cfg.NumCategories
		category[l] = c
		members[c] = append(members[c], l)
	}

	d := &Dataset{
		Name:       cfg.Name,
		Task:       Classification,
		NumUsers:   cfg.NumUsers,
		NumObjects: cfg.NumLinks,
		Users:      make([][]Interaction, cfg.NumUsers),
	}

	// Zipf-like within-category popularity so the link marginals are skewed
	// the way real click logs are.
	pickFrom := func(c int) int {
		ms := members[c]
		// Inverse-CDF of a truncated power law over the member list.
		r := rng.Float64()
		i := int(float64(len(ms)) * r * r)
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}

	for u := 0; u < cfg.NumUsers; u++ {
		prefs := rng.Perm(cfg.NumCategories)[:cfg.PrefCategories]
		longTerm := make([]float64, cfg.NumCategories)
		for _, p := range prefs {
			longTerm[p] = 0.5 + rng.Float64()
		}
		intent := make([]float64, cfg.NumCategories)
		n := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
		log := make([]Interaction, 0, n)
		for t := 0; t < n; t++ {
			var link int
			if rng.Float64() < cfg.Noise {
				link = rng.Intn(cfg.NumLinks)
			} else {
				link = pickFrom(sampleCategory(rng, longTerm, intent, cfg.IntentWeight))
			}
			log = append(log, Interaction{Object: link, Rating: 1, Time: int64(t)})
			for c := range intent {
				intent[c] *= cfg.IntentDecay
			}
			intent[category[link]] += 1 - cfg.IntentDecay
		}
		d.Users[u] = log
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// sampleCategory draws a category index proportionally to
// exp(longTerm + w·intent) — a softmax mixture of static and sequential
// preference.
func sampleCategory(rng *rand.Rand, longTerm, intent []float64, w float64) int {
	max := math.Inf(-1)
	for c := range longTerm {
		if s := longTerm[c] + w*intent[c]; s > max {
			max = s
		}
	}
	total := 0.0
	probs := make([]float64, len(longTerm))
	for c := range longTerm {
		probs[c] = math.Exp(longTerm[c] + w*intent[c] - max)
		total += probs[c]
	}
	r := rng.Float64() * total
	for c, p := range probs {
		r -= p
		if r <= 0 {
			return c
		}
	}
	return len(probs) - 1
}

// TrivagoConfig returns the Trivago stand-in; scale=1 matches Table I
// (12,790 users, 45,195 links, ~2.8M clicks, ~220 clicks/user). Web-search
// sessions have shorter intent memory than shopping logs.
func TrivagoConfig(scale float64, seed int64) CTRConfig {
	return CTRConfig{
		Name:           "trivago-synth",
		Seed:           seed,
		NumUsers:       scaled(12790, scale),
		NumLinks:       scaled(45195, scale),
		NumCategories:  clusterCount(scaled(45195, scale)),
		MinLen:         140,
		MaxLen:         300, // mean ≈ 220 clicks per user
		PrefCategories: 3,
		IntentDecay:    0.7,
		IntentWeight:   2.5,
		Noise:          0.05,
	}
}

// TaobaoConfig returns the Taobao stand-in; scale=1 matches Table I
// (37,398 users, 65,474 links, ~1.97M clicks, ~52.7 clicks/user). Shopping
// clicks carry long-term preference, so the intent memory is long — this is
// what makes larger n. help on Taobao in Figure 3.
func TaobaoConfig(scale float64, seed int64) CTRConfig {
	return CTRConfig{
		Name:           "taobao-synth",
		Seed:           seed,
		NumUsers:       scaled(37398, scale),
		NumLinks:       scaled(65474, scale),
		NumCategories:  clusterCount(scaled(65474, scale)),
		MinLen:         25,
		MaxLen:         80, // mean ≈ 52.5 clicks per user
		PrefCategories: 4,
		IntentDecay:    0.93,
		IntentWeight:   2.0,
		Noise:          0.05,
	}
}
