package data

import (
	"math"
	"testing"
)

func TestGeneratePOIDeterministic(t *testing.T) {
	cfg := GowallaConfig(0.001, 42)
	a, err := GeneratePOI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePOI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumUsers != b.NumUsers {
		t.Fatal("nondeterministic user count")
	}
	for u := range a.Users {
		if len(a.Users[u]) != len(b.Users[u]) {
			t.Fatalf("user %d length differs", u)
		}
		for i := range a.Users[u] {
			if a.Users[u][i] != b.Users[u][i] {
				t.Fatalf("user %d interaction %d differs", u, i)
			}
		}
	}
	// A different seed must actually change the data.
	cfg2 := cfg
	cfg2.Seed = 43
	c, err := GeneratePOI(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := range a.Users {
		for i := range a.Users[u] {
			if i < len(c.Users[u]) && a.Users[u][i] != c.Users[u][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// TestPOISequentialSignal verifies the generator encodes the short-range
// dependency the paper attributes to POI data: consecutive check-ins land in
// the same or adjacent clusters far more often than chance.
func TestPOISequentialSignal(t *testing.T) {
	cfg := GowallaConfig(0.002, 1)
	d, err := GeneratePOI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nearCount, total := 0, 0
	for p := 0; p < cfg.NumPOIs; p++ {
		_ = p
	}
	clusterOf := func(poi int) int { return poi % cfg.NumClusters }
	for _, log := range d.Users {
		for i := 1; i < len(log); i++ {
			a, b := clusterOf(log[i-1].Object), clusterOf(log[i].Object)
			diff := (a - b + cfg.NumClusters) % cfg.NumClusters
			if diff <= 1 || diff == cfg.NumClusters-1 {
				nearCount++
			}
			total++
		}
	}
	frac := float64(nearCount) / float64(total)
	chance := 3.0 / float64(cfg.NumClusters)
	if frac < 3*chance {
		t.Fatalf("sequential signal too weak: near-fraction %.3f vs chance %.3f", frac, chance)
	}
}

func TestPOIConfigValidation(t *testing.T) {
	base := GowallaConfig(0.001, 1)
	bad := []func(c POIConfig) POIConfig{
		func(c POIConfig) POIConfig { c.NumUsers = 0; return c },
		func(c POIConfig) POIConfig { c.NumClusters = 1; return c },
		func(c POIConfig) POIConfig { c.NumClusters = c.NumPOIs + 1; return c },
		func(c POIConfig) POIConfig { c.MinLen = 2; return c },
		func(c POIConfig) POIConfig { c.MaxLen = c.MinLen - 1; return c },
		func(c POIConfig) POIConfig { c.PSeq = 0.9; c.PPref = 0.2; return c },
		func(c POIConfig) POIConfig { c.PrefClusters = 0; return c },
	}
	for i, mutate := range bad {
		if _, err := GeneratePOI(mutate(base)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateCTRLongMemory(t *testing.T) {
	// Taobao's intent decay is higher than Trivago's; verify the configs
	// encode the paper's observation and that both generate valid data.
	tv := TrivagoConfig(0.002, 1)
	tb := TaobaoConfig(0.002, 1)
	if tb.IntentDecay <= tv.IntentDecay {
		t.Fatalf("taobao decay %v should exceed trivago %v", tb.IntentDecay, tv.IntentDecay)
	}
	for _, cfg := range []CTRConfig{tv, tb} {
		d, err := GenerateCTR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.Task != Classification {
			t.Fatal("task")
		}
	}
}

// TestCTRCategoryConcentration: a user's clicks concentrate on few
// categories (their long-term interests) rather than spreading uniformly.
func TestCTRCategoryConcentration(t *testing.T) {
	cfg := TaobaoConfig(0.002, 5)
	d, err := GenerateCTR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	for _, log := range d.Users {
		seen := map[int]int{}
		for _, it := range log {
			seen[it.Object%cfg.NumCategories]++
		}
		// Top category share.
		top, total := 0, 0
		for _, c := range seen {
			if c > top {
				top = c
			}
			total += c
		}
		if float64(top)/float64(total) > 2.0/float64(cfg.NumCategories) {
			over++
		}
	}
	if frac := float64(over) / float64(d.NumUsers); frac < 0.9 {
		t.Fatalf("only %.2f of users show concentrated interests", frac)
	}
}

func TestCTRConfigValidation(t *testing.T) {
	base := TrivagoConfig(0.002, 1)
	bad := []func(c CTRConfig) CTRConfig{
		func(c CTRConfig) CTRConfig { c.NumLinks = 1; return c },
		func(c CTRConfig) CTRConfig { c.NumCategories = 1; return c },
		func(c CTRConfig) CTRConfig { c.MinLen = 0; return c },
		func(c CTRConfig) CTRConfig { c.IntentDecay = 1; return c },
		func(c CTRConfig) CTRConfig { c.Noise = 2; return c },
		func(c CTRConfig) CTRConfig { c.PrefCategories = 0; return c },
	}
	for i, mutate := range bad {
		if _, err := GenerateCTR(mutate(base)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateRatingRangeAndRounding(t *testing.T) {
	cfg := BeautyConfig(0.002, 9)
	d, err := GenerateRating(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Task != Regression {
		t.Fatal("task")
	}
	for _, log := range d.Users {
		for _, it := range log {
			if it.Rating < 1 || it.Rating > 5 {
				t.Fatalf("rating %v outside [1,5]", it.Rating)
			}
			if it.Rating != math.Round(it.Rating) {
				t.Fatalf("rating %v not integer despite RoundRatings", it.Rating)
			}
		}
	}
}

// TestRatingVarianceOrdering: Beauty's noise exceeds Toys', matching the
// paper's harder-MAE-on-Beauty outcome.
func TestRatingVarianceOrdering(t *testing.T) {
	be := BeautyConfig(1, 1)
	to := ToysConfig(1, 1)
	if be.NoiseStd <= to.NoiseStd {
		t.Fatalf("beauty noise %v should exceed toys %v", be.NoiseStd, to.NoiseStd)
	}
}

func TestRatingConfigValidation(t *testing.T) {
	base := BeautyConfig(0.002, 1)
	bad := []func(c RatingConfig) RatingConfig{
		func(c RatingConfig) RatingConfig { c.NumItems = 1; return c },
		func(c RatingConfig) RatingConfig { c.LatentDim = 0; return c },
		func(c RatingConfig) RatingConfig { c.MinLen = 2; return c },
		func(c RatingConfig) RatingConfig { c.DriftWindow = 0; return c },
		func(c RatingConfig) RatingConfig { c.NoiseStd = -1; return c },
	}
	for i, mutate := range bad {
		if _, err := GenerateRating(mutate(base)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestComputeStatsMatchesPaperFormula(t *testing.T) {
	d, err := GeneratePOI(FoursquareConfig(0.001, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(d)
	if s.SparseFeatures != d.NumUsers+2*d.NumObjects {
		t.Fatalf("sparse features %d != users+2*objects", s.SparseFeatures)
	}
	if s.Instances != d.NumInstances() {
		t.Fatal("instance count")
	}
	if s.AvgSeqLen <= 0 || s.MinSeqLen <= 0 || s.MaxSeqLen < s.MinSeqLen {
		t.Fatalf("length stats: %+v", s)
	}
	if s.String() == "" || FormatStatsTable([]Stats{s}) == "" {
		t.Fatal("formatting empty")
	}
}

func TestScaledTableISizes(t *testing.T) {
	// scale=1 must reproduce the paper's Table I user/object counts exactly.
	cases := []struct {
		users, objects int
		gotU, gotO     int
	}{
		{34796, 57445, GowallaConfig(1, 1).NumUsers, GowallaConfig(1, 1).NumPOIs},
		{24941, 28593, FoursquareConfig(1, 1).NumUsers, FoursquareConfig(1, 1).NumPOIs},
		{12790, 45195, TrivagoConfig(1, 1).NumUsers, TrivagoConfig(1, 1).NumLinks},
		{37398, 65474, TaobaoConfig(1, 1).NumUsers, TaobaoConfig(1, 1).NumLinks},
		{22363, 12101, BeautyConfig(1, 1).NumUsers, BeautyConfig(1, 1).NumItems},
		{19412, 11924, ToysConfig(1, 1).NumUsers, ToysConfig(1, 1).NumItems},
	}
	for i, c := range cases {
		if c.gotU != c.users || c.gotO != c.objects {
			t.Errorf("case %d: got %d/%d users/objects, want %d/%d", i, c.gotU, c.gotO, c.users, c.objects)
		}
	}
}

func TestFilterInactive(t *testing.T) {
	d := &Dataset{
		Name: "f", Task: Ranking, NumUsers: 3, NumObjects: 4,
		Users: [][]Interaction{
			{{Object: 0}, {Object: 1}, {Object: 0}, {Object: 1}},
			{{Object: 0}, {Object: 1}, {Object: 0}},
			{{Object: 2}}, // object 2 and this user both inactive
		},
	}
	out := FilterInactive(d, 2, 3)
	if out.NumUsers != 2 {
		t.Fatalf("users after filter: %d", out.NumUsers)
	}
	if out.NumObjects != 2 {
		t.Fatalf("objects after filter: %d", out.NumObjects)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Filtering must re-index objects densely.
	for _, log := range out.Users {
		for _, it := range log {
			if it.Object >= out.NumObjects {
				t.Fatalf("stale object id %d", it.Object)
			}
		}
	}
}

func TestFilterInactiveFixedPoint(t *testing.T) {
	// Removing object 2 drops user 2 below threshold, which in turn drops
	// object 3 below its threshold — the filter must cascade.
	d := &Dataset{
		Name: "cascade", Task: Ranking, NumUsers: 3, NumObjects: 4,
		Users: [][]Interaction{
			{{Object: 0}, {Object: 1}, {Object: 0}, {Object: 1}},
			{{Object: 0}, {Object: 1}, {Object: 1}},
			{{Object: 2}, {Object: 3}, {Object: 3}},
		},
	}
	out := FilterInactive(d, 3, 3)
	if out.NumUsers != 2 || out.NumObjects != 2 {
		t.Fatalf("cascade: users=%d objects=%d", out.NumUsers, out.NumObjects)
	}
}
