package data

import (
	"fmt"
	"math"
	"math/rand"
)

// RatingConfig drives the synthetic explicit-rating generator standing in
// for the Amazon Beauty and Toys datasets (Table I, regression task).
//
// Ratings follow the classic matrix-factorization decomposition — global
// mean + user bias + item bias + latent affinity — which is the signal FM,
// HOFM and NFM capture. On top of that sits a sequential drift term: a user
// who recently rated items similar to the target rates it higher (taste
// momentum). That drift is the signal that separates SeqFM and RRN in
// Table IV; its weight is DriftWeight.
type RatingConfig struct {
	Name     string
	Seed     int64
	NumUsers int
	NumItems int
	// LatentDim is the dimensionality of the ground-truth factors.
	LatentDim int
	// MinLen/MaxLen bound per-user rating counts. Amazon logs are short
	// (≈9 ratings/user in Table I).
	MinLen, MaxLen int
	// DriftWeight scales the sequential taste-momentum term.
	DriftWeight float64
	// DriftWindow is how many recent items contribute to the momentum.
	DriftWindow int
	// NoiseStd is the observation noise before clipping to [1,5].
	NoiseStd float64
	// RoundRatings snaps outputs to integer stars like Amazon.
	RoundRatings bool
}

// Validate reports configuration errors.
func (c RatingConfig) Validate() error {
	switch {
	case c.NumUsers < 1 || c.NumItems < 2:
		return fmt.Errorf("data: rating config %q: need >=1 user and >=2 items", c.Name)
	case c.LatentDim < 1:
		return fmt.Errorf("data: rating config %q: latent dim %d", c.Name, c.LatentDim)
	case c.MinLen < 3 || c.MaxLen < c.MinLen:
		return fmt.Errorf("data: rating config %q: bad length range [%d,%d]", c.Name, c.MinLen, c.MaxLen)
	case c.DriftWindow < 1:
		return fmt.Errorf("data: rating config %q: drift window %d", c.Name, c.DriftWindow)
	case c.NoiseStd < 0:
		return fmt.Errorf("data: rating config %q: noise %v", c.Name, c.NoiseStd)
	}
	return nil
}

// GenerateRating builds a deterministic synthetic rating log for cfg.
func GenerateRating(cfg RatingConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	scale := 1 / math.Sqrt(float64(cfg.LatentDim))
	userF := randMat(rng, cfg.NumUsers, cfg.LatentDim, scale)
	itemF := randMat(rng, cfg.NumItems, cfg.LatentDim, scale)
	userB := randVec(rng, cfg.NumUsers, 0.3)
	itemB := randVec(rng, cfg.NumItems, 0.3)
	const globalMean = 3.6 // Amazon-like mean star rating

	d := &Dataset{
		Name:       cfg.Name,
		Task:       Regression,
		NumUsers:   cfg.NumUsers,
		NumObjects: cfg.NumItems,
		Users:      make([][]Interaction, cfg.NumUsers),
	}

	for u := 0; u < cfg.NumUsers; u++ {
		n := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
		log := make([]Interaction, 0, n)
		recent := make([]int, 0, cfg.DriftWindow)
		for t := 0; t < n; t++ {
			// Users preferentially pick items similar to what they rated
			// recently: sample a few candidates, keep the most similar one.
			item := rng.Intn(cfg.NumItems)
			if len(recent) > 0 {
				best, bestSim := item, math.Inf(-1)
				for k := 0; k < 4; k++ {
					cand := rng.Intn(cfg.NumItems)
					sim := dotVec(itemF[cand], itemF[recent[len(recent)-1]])
					if sim > bestSim {
						best, bestSim = cand, sim
					}
				}
				if rng.Float64() < 0.6 {
					item = best
				}
			}

			drift := 0.0
			if len(recent) > 0 {
				for _, r := range recent {
					drift += dotVec(itemF[item], itemF[r])
				}
				drift /= float64(len(recent))
			}

			r := globalMean + userB[u] + itemB[item] +
				dotVec(userF[u], itemF[item]) +
				cfg.DriftWeight*drift +
				cfg.NoiseStd*rng.NormFloat64()
			if cfg.RoundRatings {
				r = math.Round(r)
			}
			r = clamp(r, 1, 5)
			log = append(log, Interaction{Object: item, Rating: r, Time: int64(t)})

			recent = append(recent, item)
			if len(recent) > cfg.DriftWindow {
				recent = recent[1:]
			}
		}
		d.Users[u] = log
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func randMat(rng *rand.Rand, rows, cols int, std float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = randVec(rng, cols, std)
	}
	return m
}

func randVec(rng *rand.Rand, n int, std float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = std * rng.NormFloat64()
	}
	return v
}

func dotVec(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BeautyConfig returns the Amazon Beauty stand-in; scale=1 matches Table I
// (22,363 users, 12,101 items, ~198K ratings, ~8.9 ratings/user).
func BeautyConfig(scale float64, seed int64) RatingConfig {
	return RatingConfig{
		Name:         "beauty-synth",
		Seed:         seed,
		NumUsers:     scaled(22363, scale),
		NumItems:     scaled(12101, scale),
		LatentDim:    8,
		MinLen:       5,
		MaxLen:       13, // mean ≈ 9 ratings per user
		DriftWeight:  1.2,
		DriftWindow:  3,
		NoiseStd:     0.45,
		RoundRatings: true,
	}
}

// ToysConfig returns the Amazon Toys stand-in; scale=1 matches Table I
// (19,412 users, 11,924 items, ~168K ratings, ~8.6 ratings/user). Toys
// ratings have lower variance than Beauty in the paper (MAE 0.70 vs 0.89
// for SeqFM), so the noise is smaller.
func ToysConfig(scale float64, seed int64) RatingConfig {
	return RatingConfig{
		Name:         "toys-synth",
		Seed:         seed,
		NumUsers:     scaled(19412, scale),
		NumItems:     scaled(11924, scale),
		LatentDim:    8,
		MinLen:       5,
		MaxLen:       13,
		DriftWeight:  1.0,
		DriftWindow:  3,
		NoiseStd:     0.3,
		RoundRatings: true,
	}
}
