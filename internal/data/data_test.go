package data

import (
	"math/rand"
	"testing"
	"time"

	"seqfm/internal/feature"
)

// tinyDataset builds a hand-written 3-user dataset for split tests.
func tinyDataset() *Dataset {
	return &Dataset{
		Name:       "tiny",
		Task:       Ranking,
		NumUsers:   3,
		NumObjects: 6,
		Users: [][]Interaction{
			{{Object: 0, Rating: 1, Time: 0}, {Object: 1, Rating: 1, Time: 1},
				{Object: 2, Rating: 1, Time: 2}, {Object: 3, Rating: 1, Time: 3}},
			{{Object: 4, Rating: 1, Time: 0}, {Object: 5, Rating: 1, Time: 1}},
			{},
		},
	}
}

func TestSplitLeaveOneOut(t *testing.T) {
	d := tinyDataset()
	s := NewSplit(d)
	// User 0 (4 interactions): positions 1..(n−2) train ⇒ {1}, val=pos 2, test=pos 3.
	if len(s.Val) != 1 || len(s.Test) != 1 {
		t.Fatalf("val=%d test=%d, want 1/1", len(s.Val), len(s.Test))
	}
	if s.Test[0].Target != 3 || s.Val[0].Target != 2 {
		t.Fatalf("test target %d, val target %d", s.Test[0].Target, s.Val[0].Target)
	}
	// Test history must be everything before the last interaction.
	if got := s.Test[0].Hist; len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("test hist %v", got)
	}
	// User 1 has only 2 interactions: train-only (position 1).
	foundUser1 := false
	for _, inst := range s.Train {
		if inst.User == 1 {
			foundUser1 = true
			if inst.Target != 5 || len(inst.Hist) != 1 || inst.Hist[0] != 4 {
				t.Fatalf("user-1 train instance %+v", inst)
			}
		}
		if inst.User == 0 && inst.Target == 3 {
			t.Fatal("test interaction leaked into training")
		}
	}
	if !foundUser1 {
		t.Fatal("short user contributed no training data")
	}
}

func TestSplitChronology(t *testing.T) {
	// Every training instance's history must precede its target in time.
	d, err := GeneratePOI(GowallaConfig(0.001, 3))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSplit(d)
	for _, inst := range s.Train {
		log := d.Users[inst.User]
		pos := len(inst.Hist)
		if log[pos].Object != inst.Target {
			t.Fatalf("instance target %d not at position %d of the log", inst.Target, pos)
		}
		for i, h := range inst.Hist {
			if log[i].Object != h {
				t.Fatal("history does not match the chronological prefix")
			}
		}
	}
}

func TestSubsetTrain(t *testing.T) {
	d := tinyDataset()
	s := NewSplit(d)
	sub := s.SubsetTrain(0.5)
	if len(sub.Train) != 1 {
		t.Fatalf("subset train=%d", len(sub.Train))
	}
	if len(sub.Test) != len(s.Test) {
		t.Fatal("subset changed the test split")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for frac>1")
			}
		}()
		s.SubsetTrain(1.5)
	}()
}

func TestNegativeSamplerAvoidsSeen(t *testing.T) {
	d := tinyDataset()
	ns := NewNegativeSampler(d, rand.New(rand.NewSource(1)))
	for i := 0; i < 200; i++ {
		o := ns.Sample(0) // user 0 saw {0,1,2,3}
		if o == 0 || o == 1 || o == 2 || o == 3 {
			t.Fatalf("sampled seen object %d", o)
		}
	}
	negs := ns.SampleN(0, 2)
	if len(negs) != 2 || negs[0] == negs[1] {
		t.Fatalf("SampleN: %v", negs)
	}
	if !ns.Seen(0, 2) || ns.Seen(0, 4) {
		t.Fatal("Seen bookkeeping wrong")
	}
}

// TestSampleNExceedingVocabulary pins the regression where asking for more
// distinct negatives than the object vocabulary holds looped forever: the
// sampler must fall back to duplicates and terminate.
func TestSampleNExceedingVocabulary(t *testing.T) {
	d := tinyDataset() // 6 objects
	ns := NewNegativeSampler(d, rand.New(rand.NewSource(2)))
	done := make(chan []int, 1)
	go func() { done <- ns.SampleN(0, 50) }()
	select {
	case negs := <-done:
		if len(negs) != 50 {
			t.Fatalf("SampleN returned %d of 50", len(negs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SampleN hung when n exceeds the vocabulary")
	}
}

func TestWithTargetObject(t *testing.T) {
	d := tinyDataset()
	d.NumItemAttrs = 2
	d.ItemAttr = []int{0, 1, 0, 1, 0, 1}
	s := NewSplit(d)
	inst := s.Test[0]
	re := d.WithTargetObject(inst, 4)
	if re.Target != 4 || re.TargetAttr != 0 {
		t.Fatalf("retarget: %+v", re)
	}
	if re.User != inst.User || len(re.Hist) != len(inst.Hist) {
		t.Fatal("retarget disturbed other fields")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := tinyDataset()
	d.Users[0][0].Object = 99
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range object not caught")
	}
	d = tinyDataset()
	d.Users[0][0].Time = 5 // out of order vs Time=1 next
	if err := d.Validate(); err == nil {
		t.Fatal("time disorder not caught")
	}
	d = tinyDataset()
	d.NumUserAttrs = 1
	if err := d.Validate(); err == nil {
		t.Fatal("missing attr table not caught")
	}
}

func TestSpaceFromDataset(t *testing.T) {
	d := tinyDataset()
	sp := d.Space()
	if sp.NumUsers != 3 || sp.NumObjects != 6 {
		t.Fatalf("space: %+v", sp)
	}
	if sp.StaticDim() != 9 || sp.DynamicDim() != 6 {
		t.Fatal("space dims")
	}
}

func TestInstanceAttrs(t *testing.T) {
	d := tinyDataset()
	d.NumUserAttrs = 2
	d.UserAttr = []int{1, 0, 1}
	d.NumItemAttrs = 3
	d.ItemAttr = []int{0, 1, 2, 0, 1, 2}
	s := NewSplit(d)
	inst := s.Test[0] // user 0, target 3
	if inst.UserAttr != 1 || inst.TargetAttr != 0 {
		t.Fatalf("attrs: %+v", inst)
	}
}

func TestInstanceWithoutAttrsUsesPad(t *testing.T) {
	s := NewSplit(tinyDataset())
	if s.Test[0].UserAttr != feature.Pad || s.Test[0].TargetAttr != feature.Pad {
		t.Fatal("absent attrs should be Pad")
	}
}

func TestObjectsEnumeratesCatalog(t *testing.T) {
	d := &Dataset{NumUsers: 1, NumObjects: 4, Users: [][]Interaction{{{Object: 2, Rating: 1, Time: 1}}}}
	got := d.Objects()
	if len(got) != 4 {
		t.Fatalf("Objects() len = %d, want NumObjects = 4 (uninteracted objects are still candidates)", len(got))
	}
	for i, o := range got {
		if o != i {
			t.Fatalf("Objects()[%d] = %d, want %d", i, o, i)
		}
	}
	got[0] = 99
	if d.Objects()[0] != 0 {
		t.Fatal("Objects() does not return a fresh slice")
	}
}

func TestSortUsersByLength(t *testing.T) {
	d := tinyDataset()
	ids := SortUsersByLength(d)
	if ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("order: %v", ids)
	}
}

func TestTaskString(t *testing.T) {
	if Ranking.String() != "ranking" || Classification.String() != "classification" ||
		Regression.String() != "regression" {
		t.Fatal("task names")
	}
	if Task(9).String() == "" {
		t.Fatal("unknown task name empty")
	}
}
