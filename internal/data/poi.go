package data

import (
	"fmt"
	"math/rand"
)

// POIConfig drives the synthetic check-in generator standing in for the
// Gowalla and Foursquare datasets (Table I, ranking task).
//
// The generative story encodes the structure the paper attributes to POI
// data (§VI-B): "users tend to choose the next POI close to their current
// check-in location, thus forming sequential dependencies in short lengths".
// POIs live in clusters arranged on a ring (a 1-D geography); each next
// check-in is drawn from a mixture of (a) the neighbourhood of the previous
// check-in's cluster — the short-range sequential signal — and (b) the
// user's static home-cluster preference — the signal set-category FMs can
// capture. Component (a) is what separates sequence-aware models in
// Table II.
type POIConfig struct {
	Name     string
	Seed     int64
	NumUsers int
	NumPOIs  int
	// NumClusters partitions POIs into geographic neighbourhoods.
	NumClusters int
	// MinLen/MaxLen bound the per-user check-in count (uniformly drawn).
	MinLen, MaxLen int
	// PSeq is the probability the next check-in follows the geography of the
	// previous one; PPref the probability it follows the user's static
	// preference; PReturn the probability the user returns to the
	// neighbourhood visited ReturnLag steps ago (a trip pattern that
	// last-item-only models such as TFM cannot capture, but full-sequence
	// models can); the remainder is uniform exploration noise.
	PSeq, PPref, PReturn float64
	// ReturnLag is how many steps back the return pattern looks (default 3).
	ReturnLag int
	// PrefClusters is how many home clusters each user prefers.
	PrefClusters int
}

// Validate reports configuration errors.
func (c POIConfig) Validate() error {
	switch {
	case c.NumUsers < 1 || c.NumPOIs < 2:
		return fmt.Errorf("data: POI config %q: need >=1 user and >=2 POIs", c.Name)
	case c.NumClusters < 2 || c.NumClusters > c.NumPOIs:
		return fmt.Errorf("data: POI config %q: clusters %d outside [2,%d]", c.Name, c.NumClusters, c.NumPOIs)
	case c.MinLen < 3 || c.MaxLen < c.MinLen:
		return fmt.Errorf("data: POI config %q: bad length range [%d,%d]", c.Name, c.MinLen, c.MaxLen)
	case c.PSeq < 0 || c.PPref < 0 || c.PReturn < 0 || c.PSeq+c.PPref+c.PReturn > 1:
		return fmt.Errorf("data: POI config %q: mixture weights %v+%v+%v", c.Name, c.PSeq, c.PPref, c.PReturn)
	case c.PReturn > 0 && c.ReturnLag < 1:
		return fmt.Errorf("data: POI config %q: return lag %d with PReturn %v", c.Name, c.ReturnLag, c.PReturn)
	case c.PrefClusters < 1 || c.PrefClusters > c.NumClusters:
		return fmt.Errorf("data: POI config %q: %d preferred clusters of %d", c.Name, c.PrefClusters, c.NumClusters)
	}
	return nil
}

// GeneratePOI builds a deterministic synthetic check-in dataset for cfg.
func GeneratePOI(cfg POIConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Assign every POI to a cluster; keep per-cluster member lists.
	cluster := make([]int, cfg.NumPOIs)
	members := make([][]int, cfg.NumClusters)
	for p := 0; p < cfg.NumPOIs; p++ {
		c := p % cfg.NumClusters // round-robin keeps every cluster non-empty
		cluster[p] = c
		members[c] = append(members[c], p)
	}

	d := &Dataset{
		Name:       cfg.Name,
		Task:       Ranking,
		NumUsers:   cfg.NumUsers,
		NumObjects: cfg.NumPOIs,
		Users:      make([][]Interaction, cfg.NumUsers),
	}

	pickFrom := func(c int) int {
		ms := members[c]
		return ms[rng.Intn(len(ms))]
	}
	// neighbour returns a cluster near c on the ring: stay, or step ±1.
	neighbour := func(c int) int {
		switch r := rng.Float64(); {
		case r < 0.5:
			return c
		case r < 0.75:
			return (c + 1) % cfg.NumClusters
		default:
			return (c - 1 + cfg.NumClusters) % cfg.NumClusters
		}
	}

	for u := 0; u < cfg.NumUsers; u++ {
		prefs := rng.Perm(cfg.NumClusters)[:cfg.PrefClusters]
		n := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
		log := make([]Interaction, 0, n)
		cur := pickFrom(prefs[rng.Intn(len(prefs))])
		log = append(log, Interaction{Object: cur, Rating: 1, Time: 0})
		for t := 1; t < n; t++ {
			var next int
			switch r := rng.Float64(); {
			case r < cfg.PSeq:
				next = pickFrom(neighbour(cluster[cur]))
			case r < cfg.PSeq+cfg.PPref:
				next = pickFrom(prefs[rng.Intn(len(prefs))])
			case r < cfg.PSeq+cfg.PPref+cfg.PReturn && t >= cfg.ReturnLag:
				// Return trip: back to the neighbourhood of ReturnLag ago.
				next = pickFrom(cluster[log[t-cfg.ReturnLag].Object])
			default:
				next = rng.Intn(cfg.NumPOIs)
			}
			log = append(log, Interaction{Object: next, Rating: 1, Time: int64(t)})
			cur = next
		}
		d.Users[u] = log
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// GowallaConfig returns the Gowalla stand-in scaled by scale ∈ (0, 1];
// scale=1 matches Table I (34,796 users, 57,445 POIs, ~1.87M check-ins,
// ~53.6 check-ins/user).
func GowallaConfig(scale float64, seed int64) POIConfig {
	return POIConfig{
		Name:         "gowalla-synth",
		Seed:         seed,
		NumUsers:     scaled(34796, scale),
		NumPOIs:      scaled(57445, scale),
		NumClusters:  clusterCount(scaled(57445, scale)),
		MinLen:       20,
		MaxLen:       87, // mean ≈ 53.5 check-ins per user
		PSeq:         0.45,
		PPref:        0.2,
		PReturn:      0.25,
		ReturnLag:    3,
		PrefClusters: 3,
	}
}

// FoursquareConfig returns the Foursquare stand-in; scale=1 matches Table I
// (24,941 users, 28,593 POIs, ~1.2M check-ins, ~48/user). It is sparser than
// Gowalla (fewer check-ins per POI), reproducing the higher-sparsity setting
// where the paper notes SASRec underperforms.
func FoursquareConfig(scale float64, seed int64) POIConfig {
	return POIConfig{
		Name:         "foursquare-synth",
		Seed:         seed,
		NumUsers:     scaled(24941, scale),
		NumPOIs:      scaled(28593, scale),
		NumClusters:  clusterCount(scaled(28593, scale)),
		MinLen:       16,
		MaxLen:       80, // mean ≈ 48 check-ins per user
		PSeq:         0.4,
		PPref:        0.25,
		PReturn:      0.25,
		ReturnLag:    3,
		PrefClusters: 4,
	}
}

// scaled shrinks a Table I count by scale with a sane floor.
func scaled(full int, scale float64) int {
	n := int(float64(full) * scale)
	if n < 12 {
		n = 12
	}
	return n
}

// clusterCount picks a cluster count that keeps ~8 POIs per cluster.
func clusterCount(pois int) int {
	c := pois / 8
	if c < 4 {
		c = 4
	}
	return c
}
