// Package data provides the dataset substrate: chronologically ordered
// interaction logs, the leave-one-out evaluation split of §V-C, negative
// sampling, dataset statistics (Table I), and synthetic generators standing
// in for the paper's six public datasets (Gowalla, Foursquare, Trivago,
// Taobao, Amazon Beauty, Amazon Toys) — see DESIGN.md §1 for why each
// generator preserves the behaviour the paper measures.
package data

import (
	"fmt"
	"math/rand"
	"sort"

	"seqfm/internal/feature"
)

// Task identifies which of the paper's three application scenarios a dataset
// serves (§IV).
type Task int

// The three temporal predictive analytics tasks of the paper.
const (
	Ranking        Task = iota // next-POI recommendation, §IV-A
	Classification             // click-through rate prediction, §IV-B
	Regression                 // rating prediction, §IV-C
)

// String names the task.
func (t Task) String() string {
	switch t {
	case Ranking:
		return "ranking"
	case Classification:
		return "classification"
	case Regression:
		return "regression"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Interaction is one timestamped (implicit or explicit) user-object event.
type Interaction struct {
	Object int
	Rating float64 // 1 for implicit feedback; 1..5 for ratings
	Time   int64
}

// Dataset is a per-user chronologically sorted interaction log plus optional
// static side information.
type Dataset struct {
	Name string
	Task Task

	NumUsers   int
	NumObjects int

	// Users[u] lists user u's interactions in non-decreasing Time order.
	Users [][]Interaction

	// Optional static side features ("other static features" of Eq. 20/22/25).
	NumUserAttrs int
	NumItemAttrs int
	UserAttr     []int // len NumUsers when NumUserAttrs > 0
	ItemAttr     []int // len NumObjects when NumItemAttrs > 0
}

// Space returns the sparse feature space induced by the dataset.
func (d *Dataset) Space() feature.Space {
	return feature.Space{
		NumUsers:     d.NumUsers,
		NumObjects:   d.NumObjects,
		NumUserAttrs: d.NumUserAttrs,
		NumItemAttrs: d.NumItemAttrs,
	}
}

// Objects returns every object id in the catalog — 0 through NumObjects-1
// in ascending order — as a fresh slice the caller may keep. It is the
// candidate universe: index builds and full-catalog serving paths iterate
// it instead of re-deriving the catalog by scanning interaction logs (an
// object with no interactions yet is still a valid candidate).
func (d *Dataset) Objects() []int {
	out := make([]int, d.NumObjects)
	for i := range out {
		out[i] = i
	}
	return out
}

// NumInstances returns the total interaction count (Table I "#Instance").
func (d *Dataset) NumInstances() int {
	n := 0
	for _, u := range d.Users {
		n += len(u)
	}
	return n
}

// Validate checks internal consistency: chronological ordering, index
// ranges, and attribute table sizes. Generators call it before returning.
func (d *Dataset) Validate() error {
	if len(d.Users) != d.NumUsers {
		return fmt.Errorf("data: %s: %d user logs for %d users", d.Name, len(d.Users), d.NumUsers)
	}
	for u, log := range d.Users {
		for i, it := range log {
			if it.Object < 0 || it.Object >= d.NumObjects {
				return fmt.Errorf("data: %s: user %d object %d outside [0,%d)", d.Name, u, it.Object, d.NumObjects)
			}
			if i > 0 && it.Time < log[i-1].Time {
				return fmt.Errorf("data: %s: user %d interactions out of order at %d", d.Name, u, i)
			}
		}
	}
	if d.NumUserAttrs > 0 && len(d.UserAttr) != d.NumUsers {
		return fmt.Errorf("data: %s: %d user attrs for %d users", d.Name, len(d.UserAttr), d.NumUsers)
	}
	if d.NumItemAttrs > 0 && len(d.ItemAttr) != d.NumObjects {
		return fmt.Errorf("data: %s: %d item attrs for %d objects", d.Name, len(d.ItemAttr), d.NumObjects)
	}
	return nil
}

// instance builds the feature.Instance for predicting position pos of user
// u's log from everything before it.
func (d *Dataset) instance(u, pos int) feature.Instance {
	log := d.Users[u]
	hist := make([]int, pos)
	for i := 0; i < pos; i++ {
		hist[i] = log[i].Object
	}
	inst := feature.Instance{
		User:       u,
		Target:     log[pos].Object,
		Hist:       hist,
		Label:      log[pos].Rating,
		UserAttr:   feature.Pad,
		TargetAttr: feature.Pad,
	}
	if d.NumUserAttrs > 0 {
		inst.UserAttr = d.UserAttr[u]
	}
	if d.NumItemAttrs > 0 {
		inst.TargetAttr = d.ItemAttr[log[pos].Object]
	}
	return inst
}

// WithTargetObject returns a copy of inst re-targeted at object (used to
// score ranking candidates and sampled negatives against the same history).
func (d *Dataset) WithTargetObject(inst feature.Instance, object int) feature.Instance {
	out := inst
	out.Target = object
	if d.NumItemAttrs > 0 {
		out.TargetAttr = d.ItemAttr[object]
	}
	return out
}

// Split is the leave-one-out protocol of §V-C: within each user's
// transaction the last record is the test ground truth, the second-last the
// validation record, and the rest train the models. Users with fewer than
// three interactions contribute only training positions.
type Split struct {
	ds    *Dataset
	Train []feature.Instance
	Val   []feature.Instance
	Test  []feature.Instance
}

// NewSplit materialises the leave-one-out split. Training instances are
// built from every in-log position (each object predicted from its prefix),
// skipping position 0, which has no history to condition on.
func NewSplit(d *Dataset) *Split {
	s := &Split{ds: d}
	for u, log := range d.Users {
		n := len(log)
		if n == 0 {
			continue
		}
		trainEnd := n
		if n >= 3 {
			trainEnd = n - 2
			s.Val = append(s.Val, d.instance(u, n-2))
			s.Test = append(s.Test, d.instance(u, n-1))
		}
		for pos := 1; pos < trainEnd; pos++ {
			s.Train = append(s.Train, d.instance(u, pos))
		}
	}
	return s
}

// Dataset returns the dataset the split was built from.
func (s *Split) Dataset() *Dataset { return s.ds }

// SubsetTrain returns a copy of the split with only the first fraction of
// training instances retained (per Figure 4's scalability protocol of
// varying the training data proportion). frac must be in (0, 1].
func (s *Split) SubsetTrain(frac float64) *Split {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("data: SubsetTrain fraction %v", frac))
	}
	n := int(float64(len(s.Train)) * frac)
	if n < 1 {
		n = 1
	}
	return &Split{ds: s.ds, Train: s.Train[:n], Val: s.Val, Test: s.Test}
}

// NegativeSampler draws objects a given user has never interacted with,
// uniformly — used both to build BPR triples (§IV-A), to sample unobserved
// negatives for classification training (§IV-B), and to assemble the J
// ranking candidates of the evaluation protocol (§V-C).
type NegativeSampler struct {
	numObjects int
	seen       []map[int]bool
	rng        *rand.Rand
}

// NewNegativeSampler indexes the dataset's interactions for rejection
// sampling.
func NewNegativeSampler(d *Dataset, rng *rand.Rand) *NegativeSampler {
	ns := &NegativeSampler{numObjects: d.NumObjects, rng: rng}
	ns.seen = make([]map[int]bool, d.NumUsers)
	for u, log := range d.Users {
		m := make(map[int]bool, len(log))
		for _, it := range log {
			m[it.Object] = true
		}
		ns.seen[u] = m
	}
	return ns
}

// Reseed replaces the sampler's random stream, keeping the indexed
// interaction sets. The incremental trainer (train.Stepper) rederives each
// worker's sampling stream from the step counter before every minibatch so
// that checkpoint-restored runs draw the same negatives.
func (ns *NegativeSampler) Reseed(rng *rand.Rand) { ns.rng = rng }

// MarkSeen records that user u has now interacted with object o, so later
// Sample calls stop proposing it as a negative. The online trainer feeds
// ingested events through this before fine-tuning on them — without it, a
// freshly trending object would keep being sampled as its own negative. Not
// safe concurrently with Sample; the callers serialise on the training lock.
func (ns *NegativeSampler) MarkSeen(u, o int) {
	if u < 0 || u >= len(ns.seen) {
		return
	}
	ns.seen[u][o] = true
}

// Sample returns one object user u has never interacted with. It falls back
// to a uniform object if the user has seen (nearly) everything.
func (ns *NegativeSampler) Sample(u int) int {
	for tries := 0; tries < 64; tries++ {
		o := ns.rng.Intn(ns.numObjects)
		if !ns.seen[u][o] {
			return o
		}
	}
	return ns.rng.Intn(ns.numObjects)
}

// SampleN returns n negatives for user u, distinct from each other and
// unseen by the user when possible. When n exceeds the number of objects
// the vocabulary can supply, duplicates are admitted rather than looping
// forever — small synthetic datasets can have fewer objects than the J
// candidates the ranking protocol asks for.
func (ns *NegativeSampler) SampleN(u, n int) []int {
	// The user's unvisited objects bound how many distinct negatives exist.
	avail := ns.numObjects - len(ns.seen[u])
	if avail < 1 {
		avail = 1
	}
	out := make([]int, 0, n)
	used := make(map[int]bool, n)
	for len(out) < n {
		o := ns.Sample(u)
		if used[o] && len(used) < avail {
			continue
		}
		used[o] = true
		out = append(out, o)
	}
	return out
}

// Seen reports whether user u has interacted with object o.
func (ns *NegativeSampler) Seen(u, o int) bool { return ns.seen[u][o] }

// SeenSets exposes the sampler's per-user seen index (indexed by user id).
// The returned slice and maps are the live index, not a copy — read-only,
// and only under whatever lock serialises Sample/MarkSeen (the training
// lock, for the online trainer). Checkpointing uses it to persist the
// exclusion state a compacted log can no longer rebuild.
func (ns *NegativeSampler) SeenSets() []map[int]bool { return ns.seen }

// SortUsersByLength orders user ids by descending log length; useful for
// inspection tooling.
func SortUsersByLength(d *Dataset) []int {
	ids := make([]int, d.NumUsers)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return len(d.Users[ids[a]]) > len(d.Users[ids[b]]) })
	return ids
}
