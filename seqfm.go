// Package seqfm is a from-scratch Go implementation of "Sequence-Aware
// Factorization Machines for Temporal Predictive Analytics" (Chen, Yin,
// Nguyen, Peng, Li, Zhou — ICDE 2020).
//
// SeqFM splits sparse categorical features into a static view (user,
// candidate object, side information) and a dynamic view (the user's
// chronological interaction history), models the feature interactions of
// each view — and the cross interactions between them — with masked
// self-attention heads, pools each view, refines the pooled vectors with a
// shared residual feed-forward network and projects the aggregate to a
// scalar prediction. The same model serves ranking (BPR loss),
// classification (log loss) and regression (squared loss).
//
// This package is the public facade over the internal substrates (tensor
// math, reverse-mode autodiff, layers, optimizers, datasets, trainers). A
// typical ranking workflow:
//
//	ds, _ := seqfm.GeneratePOI(seqfm.GowallaConfig(0.01, 1))
//	split := seqfm.NewSplit(ds)
//	model, _ := seqfm.New(seqfm.DefaultConfig(ds.Space()))
//	seqfm.TrainRanking(model, split, seqfm.TrainConfig{Epochs: 10})
//	result := seqfm.EvalRanking(model, split, seqfm.EvalConfig{J: 100})
//	fmt.Println(result.HR[10])
//
// For serving, NewEngine wraps a trained model in a batched inference
// engine (pooled tapes, cached partial forwards, top-K scoring); the
// cmd/seqfm-serve binary exposes it over HTTP.
//
// See the examples directory for runnable programs covering the paper's
// three application scenarios, and DESIGN.md/EXPERIMENTS.md for the
// reproduction methodology.
package seqfm

import (
	"seqfm/internal/core"
	"seqfm/internal/data"
	"seqfm/internal/feature"
	"seqfm/internal/train"
)

// Model is the SeqFM model (internal/core.Model).
type Model = core.Model

// Config parameterises SeqFM; see DefaultConfig for the paper's defaults.
type Config = core.Config

// Ablation switches off SeqFM components (Table V variants).
type Ablation = core.Ablation

// AttentionWeights holds the three views' attention distributions for one
// instance, as returned by (*Model).Inspect — an interpretability hook.
// (*Model).Save and (*Model).Load checkpoint weights to any io.Writer/Reader.
type AttentionWeights = core.AttentionWeights

// New builds a SeqFM model.
func New(cfg Config) (*Model, error) { return core.New(cfg) }

// DefaultConfig returns the paper's unified hyperparameter set
// {d=64, l=1, n.=20, ρ=0.6} for the given feature space.
func DefaultConfig(space Space) Config { return core.DefaultConfig(space) }

// Space describes the sparse one-hot feature space (static + dynamic).
type Space = feature.Space

// Instance is one prediction case: (user, target, chronological history).
type Instance = feature.Instance

// Dataset is a chronologically ordered interaction log.
type Dataset = data.Dataset

// Interaction is one timestamped user-object event.
type Interaction = data.Interaction

// Split is the leave-one-out train/validation/test split of §V-C.
type Split = data.Split

// Stats summarises a dataset the way the paper's Table I does.
type Stats = data.Stats

// Task identifies ranking, classification or regression.
type Task = data.Task

// The three temporal predictive analytics tasks.
const (
	Ranking        = data.Ranking
	Classification = data.Classification
	Regression     = data.Regression
)

// NewSplit materialises the leave-one-out split for a dataset.
func NewSplit(d *Dataset) *Split { return data.NewSplit(d) }

// ComputeStats derives Table I statistics from a dataset.
func ComputeStats(d *Dataset) Stats { return data.ComputeStats(d) }

// FilterInactive applies the paper's preprocessing: drop users with fewer
// than minUser interactions and objects with fewer than minObject.
func FilterInactive(d *Dataset, minUser, minObject int) *Dataset {
	return data.FilterInactive(d, minUser, minObject)
}

// Synthetic dataset generators standing in for the paper's six datasets.
// See DESIGN.md §1 for the substitution rationale.
type (
	// POIConfig drives the check-in generator (Gowalla/Foursquare stand-in).
	POIConfig = data.POIConfig
	// CTRConfig drives the click-log generator (Trivago/Taobao stand-in).
	CTRConfig = data.CTRConfig
	// RatingConfig drives the rating generator (Beauty/Toys stand-in).
	RatingConfig = data.RatingConfig
)

// GeneratePOI builds a synthetic check-in dataset.
func GeneratePOI(cfg POIConfig) (*Dataset, error) { return data.GeneratePOI(cfg) }

// GenerateCTR builds a synthetic click-log dataset.
func GenerateCTR(cfg CTRConfig) (*Dataset, error) { return data.GenerateCTR(cfg) }

// GenerateRating builds a synthetic rating dataset.
func GenerateRating(cfg RatingConfig) (*Dataset, error) { return data.GenerateRating(cfg) }

// Preset generator configurations; scale=1 matches the paper's Table I.
var (
	GowallaConfig    = data.GowallaConfig
	FoursquareConfig = data.FoursquareConfig
	TrivagoConfig    = data.TrivagoConfig
	TaobaoConfig     = data.TaobaoConfig
	BeautyConfig     = data.BeautyConfig
	ToysConfig       = data.ToysConfig
)

// Scorer is the model interface shared by SeqFM and every baseline: a raw
// score for one instance recorded on an autodiff tape.
type Scorer = train.Model

// SharedScorer is the candidate-sharing training contract implemented by
// *Model: the forward pass decomposed into a differentiable
// candidate-independent dynamic subgraph (ForwardDynamic, built once per
// instance) and a per-candidate remainder (ForwardCandidate). The ranking
// and classification trainers detect it automatically and score the
// positive plus all sampled negatives against one shared subgraph; the
// serving engine snapshots the same decomposition. See DESIGN.md §4–5.
type SharedScorer = train.SharedScorer

// Dyn is the on-tape candidate-independent subgraph returned by
// (*Model).ForwardDynamic and consumed by (*Model).ForwardCandidate.
type Dyn = core.Dyn

// TrainConfig controls optimisation (epochs, batch size, Adam LR, negative
// samples, worker parallelism). Training is bit-for-bit reproducible for a
// fixed {Seed, Workers} pair; see train.Config's determinism contract.
type TrainConfig = train.Config

// TrainHistory records per-epoch losses and total wall-clock time.
type TrainHistory = train.History

// EvalConfig controls evaluation (J candidates, cutoffs, parallelism).
type EvalConfig = train.EvalConfig

// Task-specific evaluation results.
type (
	// RankingResult holds HR@K and NDCG@K.
	RankingResult = train.RankingResult
	// ClassificationResult holds AUC and RMSE.
	ClassificationResult = train.ClassificationResult
	// RegressionResult holds MAE and RRSE.
	RegressionResult = train.RegressionResult
)

// TrainRanking optimises a model with the BPR loss of Eq. (21).
func TrainRanking(m Scorer, split *Split, cfg TrainConfig) (*TrainHistory, error) {
	return train.Ranking(m, split, cfg)
}

// TrainClassification optimises a model with the log loss of Eq. (24).
func TrainClassification(m Scorer, split *Split, cfg TrainConfig) (*TrainHistory, error) {
	return train.Classification(m, split, cfg)
}

// TrainRegression optimises a model with the squared loss of Eq. (26).
func TrainRegression(m Scorer, split *Split, cfg TrainConfig) (*TrainHistory, error) {
	return train.Regression(m, split, cfg)
}

// EvalRanking runs the leave-one-out ranking protocol (HR@K, NDCG@K).
func EvalRanking(m Scorer, split *Split, cfg EvalConfig) RankingResult {
	return train.EvalRanking(m, split, cfg)
}

// EvalClassification runs the CTR protocol (AUC, RMSE).
func EvalClassification(m Scorer, split *Split, cfg EvalConfig) ClassificationResult {
	return train.EvalClassification(m, split, cfg)
}

// EvalRegression scores held-out ratings (MAE, RRSE).
func EvalRegression(m Scorer, split *Split, cfg EvalConfig) RegressionResult {
	return train.EvalRegression(m, split, cfg)
}

// Score runs one inference-mode forward pass and returns the raw scalar
// output of Eq. (19) for inst. Models exposing a structural spec (SeqFM
// itself) are scored through a cached compiled plan with pooled scratch
// buffers — bit-identical to the tape but allocation-free after the first
// call; baselines fall back to a pooled inference tape.
func Score(m Scorer, inst Instance) float64 {
	if pl := compiledFor(m); pl != nil {
		e := pl.Get()
		s := e.Score(inst)
		pl.Put(e)
		return s
	}
	t := newInferenceTape()
	defer releaseInferenceTape(t)
	return m.Score(t, inst).Value.ScalarValue()
}
