package seqfm

import (
	"net/http"

	"seqfm/internal/ckpt"
	"seqfm/internal/online"
	"seqfm/internal/wal"
)

// This file is the durability-and-replication facade: the write-ahead log
// (internal/wal), the learner-side replay entry points, and follower
// replication (internal/online's Replica). The WAL turns the training
// engine's determinism contract — a Stepper's whole stochastic state is its
// step counter — into exactly-once crash recovery and log-shipping read
// replicas: replaying the same records from a snapshot is bit-identical to
// having never crashed. See DESIGN.md §9.
//
//	log, _ := seqfm.OpenWAL("wal", seqfm.WALOptions{})
//	defer log.Close()
//	learner, _ := seqfm.NewOnlineLearner(m, ds, eng, seqfm.OnlineConfig{Log: log})
//	stats, _ := learner.ReplayLog() // recover: snapshot + log suffix
//	learner.Start()

// WAL is a segmented, CRC32C-framed append-only record log with pipelined
// group-commit durability and truncate-at-first-bad-frame recovery.
type WAL = wal.Log

// WALOptions parameterises OpenWAL; the zero value takes every default
// (64MiB segments, pipelined group commit).
type WALOptions = wal.Options

// WALPos addresses one record: global sequence number plus physical
// (segment, offset). Checkpoints embed the position they are consistent
// with (see CheckpointFile.Log).
type WALPos = wal.Pos

// WALRecord is one decoded log entry — an ingested event or a step, drop or
// publish marker. It doubles as the replication wire format.
type WALRecord = wal.Record

// SyncPolicy selects the WAL fsync discipline.
type SyncPolicy = wal.SyncPolicy

// The fsync policies: pipelined group commit (default), fsync per record,
// or OS page cache only.
const (
	SyncGroup = wal.SyncGroup
	SyncEach  = wal.SyncEach
	SyncNone  = wal.SyncNone
)

// OpenWAL opens (creating if needed) a log directory and recovers it:
// headers, frame CRCs and sequence continuity are verified, and a torn or
// corrupted tail is truncated at the first bad frame — the recovered
// position is reported by (*WAL).Recovered.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) { return wal.Open(dir, opts) }

// CheckpointFile is the decoded content of a ckpt-v2 stream: model config,
// parameters, optimizer state, step counter and (for WAL-backed learners)
// the log position the snapshot is consistent with.
type CheckpointFile = ckpt.File

// ReplayStats summarises one (*OnlineLearner).ReplayLog recovery pass.
type ReplayStats = online.ReplayStats

// Replica tails a primary's WAL and applies it to a local learner — the
// follower half of log-shipping replication. A caught-up replica serves
// bit-identical scores under the primary's generation ids.
type Replica = online.Replica

// ReplicaConfig parameterises NewReplica; the zero value takes every
// default (1024-record batches, 2s long-poll, 1s error backoff).
type ReplicaConfig = online.ReplicaConfig

// ReplicaStats is a snapshot of a replica's replay-lag counters.
type ReplicaStats = online.ReplicaStats

// LogSource is where a replica's records come from; HTTPLogSource tails a
// primary's /v1/replica/log endpoint.
type LogSource = online.LogSource

// HTTPLogSource fetches log batches from a primary seqfm-serve over HTTP.
type HTTPLogSource = online.HTTPLogSource

// LogFetch is one log-shipping response batch.
type LogFetch = online.LogFetch

// NewReplica wires a follower learner (built from the primary's snapshot,
// without a local WAL) to a log source. bootGen is the primary's generation
// at snapshot time — FetchPrimarySnapshot's third result.
func NewReplica(l *OnlineLearner, src LogSource, bootGen uint64, cfg ReplicaConfig) *Replica {
	return online.NewReplica(l, src, bootGen, cfg)
}

// FetchPrimarySnapshot bootstraps a follower from a primary's
// /v1/replica/snapshot endpoint: the reconstructed model, the decoded
// checkpoint (feed both to NewOnlineLearnerFromSnapshot) and the primary's
// serving generation.
func FetchPrimarySnapshot(base string, client *http.Client) (*Model, *CheckpointFile, uint64, error) {
	return online.FetchSnapshot(base, client)
}

// NewOnlineLearnerFromSnapshot is NewOnlineLearnerFromCheckpoint for an
// already-decoded checkpoint — the follower bootstrap path.
func NewOnlineLearnerFromSnapshot(m *Model, f *CheckpointFile, ds *Dataset, eng *Engine, cfg OnlineConfig) (*OnlineLearner, error) {
	return online.NewLearnerFromSnapshot(m, f, ds, eng, cfg)
}
