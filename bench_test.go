// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each bench runs the corresponding experiment
// end to end (data generation, training, evaluation) at the tiny scale so
// `go test -bench=. -benchmem` completes in minutes; the reported ns/op is
// the wall-clock cost of regenerating that artifact. Use cmd/seqfm-bench
// with -scale small|medium|full for the results recorded in EXPERIMENTS.md.
//
// Micro-benchmarks for the substrate (forward pass, forward+backward, plain
// FM scoring) sit at the bottom; they are the per-sample costs that §III-I's
// complexity analysis speaks to.
package seqfm_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"
	"time"

	"seqfm"
	"seqfm/internal/ag"
	"seqfm/internal/ckpt"
	"seqfm/internal/core"
	"seqfm/internal/data"
	"seqfm/internal/experiments"
	"seqfm/internal/index"
	"seqfm/internal/online"
	"seqfm/internal/serve"
	"seqfm/internal/train"
	"seqfm/internal/wal"
)

func tinyParams(b *testing.B) experiments.Params {
	b.Helper()
	p := experiments.ParamsFor(experiments.ScaleTiny)
	p.Epochs = 5 // benches measure harness cost, not final accuracy
	return p
}

// BenchmarkTable1DatasetStats regenerates Table I (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	p := tinyParams(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRankingDataset trains and evaluates the full Table II model zoo on
// one POI stand-in.
func benchRankingDataset(b *testing.B, gowalla bool) {
	p := tinyParams(b)
	g, f, err := p.RankingDatasets()
	if err != nil {
		b.Fatal(err)
	}
	ds := g
	if !gowalla {
		ds = f
	}
	for i := 0; i < b.N; i++ {
		split := data.NewSplit(ds)
		models, err := p.RankingModels(ds.Space())
		if err != nil {
			b.Fatal(err)
		}
		for _, nm := range models {
			if _, err := train.Ranking(nm.Model, split, p.TrainConfig()); err != nil {
				b.Fatal(err)
			}
			train.EvalRanking(nm.Model, split, p.EvalConfig())
		}
	}
}

// BenchmarkTable2RankingGowalla regenerates the Gowalla half of Table II.
func BenchmarkTable2RankingGowalla(b *testing.B) { benchRankingDataset(b, true) }

// BenchmarkTable2RankingFoursquare regenerates the Foursquare half of Table II.
func BenchmarkTable2RankingFoursquare(b *testing.B) { benchRankingDataset(b, false) }

func benchCTRDataset(b *testing.B, trivago bool) {
	p := tinyParams(b)
	tv, tb, err := p.CTRDatasets()
	if err != nil {
		b.Fatal(err)
	}
	ds := tv
	if !trivago {
		ds = tb
	}
	for i := 0; i < b.N; i++ {
		split := data.NewSplit(ds)
		models, err := p.ClassificationModels(ds.Space())
		if err != nil {
			b.Fatal(err)
		}
		for _, nm := range models {
			if _, err := train.Classification(nm.Model, split, p.TrainConfig()); err != nil {
				b.Fatal(err)
			}
			train.EvalClassification(nm.Model, split, p.EvalConfig())
		}
	}
}

// BenchmarkTable3CTRTrivago regenerates the Trivago half of Table III.
func BenchmarkTable3CTRTrivago(b *testing.B) { benchCTRDataset(b, true) }

// BenchmarkTable3CTRTaobao regenerates the Taobao half of Table III.
func BenchmarkTable3CTRTaobao(b *testing.B) { benchCTRDataset(b, false) }

func benchRatingDataset(b *testing.B, beauty bool) {
	p := tinyParams(b)
	be, to, err := p.RatingDatasets()
	if err != nil {
		b.Fatal(err)
	}
	ds := be
	if !beauty {
		ds = to
	}
	for i := 0; i < b.N; i++ {
		split := data.NewSplit(ds)
		models, err := p.RegressionModels(ds.Space())
		if err != nil {
			b.Fatal(err)
		}
		for _, nm := range models {
			if _, err := train.Regression(nm.Model, split, p.TrainConfig()); err != nil {
				b.Fatal(err)
			}
			train.EvalRegression(nm.Model, split, p.EvalConfig())
		}
	}
}

// BenchmarkTable4RatingBeauty regenerates the Beauty half of Table IV.
func BenchmarkTable4RatingBeauty(b *testing.B) { benchRatingDataset(b, true) }

// BenchmarkTable4RatingToys regenerates the Toys half of Table IV.
func BenchmarkTable4RatingToys(b *testing.B) { benchRatingDataset(b, false) }

// BenchmarkTable5Ablation regenerates the ablation study (six SeqFM
// variants across all six datasets).
func BenchmarkTable5Ablation(b *testing.B) {
	p := tinyParams(b)
	p.Epochs = 3
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Sensitivity regenerates the hyperparameter sweep with the
// tiny grids.
func BenchmarkFigure3Sensitivity(b *testing.B) {
	p := tinyParams(b)
	p.Epochs = 3
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(io.Discard, p, experiments.Figure3Values{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Scalability regenerates the training-time-vs-data curve.
func BenchmarkFigure4Scalability(b *testing.B) {
	p := tinyParams(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -----------------------------------------

func benchModelAndInstance(b *testing.B) (*core.Model, seqfm.Instance) {
	b.Helper()
	space := seqfm.Space{NumUsers: 1000, NumObjects: 2000}
	cfg := core.DefaultConfig(space) // the paper's {d=64, l=1, n.=20}
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	hist := make([]int, 20)
	for i := range hist {
		hist[i] = (i * 37) % 2000
	}
	return m, seqfm.Instance{User: 7, Target: 42, Hist: hist, UserAttr: -1, TargetAttr: -1}
}

// BenchmarkSeqFMForward measures one inference-mode forward pass at the
// paper's default configuration — the per-candidate scoring cost of §III-I.
func BenchmarkSeqFMForward(b *testing.B) {
	m, inst := benchModelAndInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ag.NewTape()
		_ = m.Score(t, inst).Value.ScalarValue()
	}
}

// BenchmarkSeqFMForwardBackward measures one training step's compute
// (forward + reverse pass + gradient flush) for a single instance.
func BenchmarkSeqFMForwardBackward(b *testing.B) {
	m, inst := benchModelAndInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ag.NewTape()
		loss := t.Square(m.Score(t, inst))
		t.Backward(loss)
		t.FlushGrads(nil)
		ag.ZeroGrads(m.Params())
	}
}

// BenchmarkSeqFMSequenceLengths reports forward cost across n. ∈ {10..50},
// the empirical counterpart of the O((n°+n.)²d) term in §III-I.
func BenchmarkSeqFMSequenceLengths(b *testing.B) {
	for _, n := range []int{10, 20, 30, 40, 50} {
		b.Run(benchName("n", n), func(b *testing.B) {
			space := seqfm.Space{NumUsers: 1000, NumObjects: 2000}
			cfg := core.DefaultConfig(space)
			cfg.MaxSeqLen = n
			m, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			hist := make([]int, n)
			for i := range hist {
				hist[i] = (i * 13) % 2000
			}
			inst := seqfm.Instance{User: 1, Target: 2, Hist: hist, UserAttr: -1, TargetAttr: -1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := ag.NewTape()
				_ = m.Score(t, inst).Value.ScalarValue()
			}
		})
	}
}

// --- serving-path benchmarks --------------------------------------------
//
// The serving scenario: rank J=100 candidate objects against one user's
// history, repeatedly. The naive baseline is what EvalRanking does per test
// case — one fresh tape and one full forward pass per candidate. The engine
// amortises the dynamic view across candidates, reuses pooled tapes, serves
// repeated (user, candidate) pairs from the static-view cache, and fans out
// over workers. Compare:
//
//	go test -bench='BenchmarkServe' -benchmem
//
// The acceptance bar for the engine is ≥2× over the naive loop at J=100
// (single-worker, cold cache); the cached and parallel variants stack well
// beyond that. EXPERIMENTS.md records reference numbers.

const benchJ = serve.BenchJ // candidates per top-K request, the paper's eval J

// benchServingSetup is the standard serving workload, shared with
// seqfm-bench -mode serve (serve.BenchWorkload) so BENCH_serve.json stays
// comparable with these numbers.
func benchServingSetup(b *testing.B) (*core.Model, seqfm.Instance, []int) {
	b.Helper()
	m, inst, candidates, err := serve.BenchWorkload()
	if err != nil {
		b.Fatal(err)
	}
	return m, inst, candidates
}

// BenchmarkServeNaivePerInstance is the baseline a serving engine must
// beat: J independent full forward passes through the one-off Score facade,
// sequentially. (Since the compiled-plan facade this no longer pays a tape
// per call, but it still recomputes the dynamic view per candidate.)
func BenchmarkServeNaivePerInstance(b *testing.B) {
	m, inst, candidates := benchServingSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range candidates {
			ci := inst
			ci.Target = c
			_ = seqfm.Score(m, ci)
		}
	}
}

// BenchmarkServeTopKColdSingleWorker isolates the algorithmic win (shared
// dynamic view + tape reuse) from parallelism and cache warmth: one worker,
// caches disabled.
func BenchmarkServeTopKColdSingleWorker(b *testing.B) {
	m, inst, candidates := benchServingSetup(b)
	eng := seqfm.NewEngine(m, seqfm.EngineConfig{Workers: 1, StaticCacheSize: -1, DynCacheSize: -1})
	defer eng.Close()
	req := seqfm.TopKRequest{Base: inst, Candidates: candidates, K: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.TopK(req)
	}
}

// BenchmarkServeTopKCold measures a cold engine at full parallelism: every
// iteration builds a fresh engine, so nothing is served from warm caches.
func BenchmarkServeTopKCold(b *testing.B) {
	m, inst, candidates := benchServingSetup(b)
	req := seqfm.TopKRequest{Base: inst, Candidates: candidates, K: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := seqfm.NewEngine(m, seqfm.EngineConfig{})
		_ = eng.TopK(req)
		eng.Close()
	}
}

// BenchmarkServeTopKCached is the steady-state serving path: one engine,
// warm static-view and dynamic-state caches, so each iteration pays only
// for the cross view of each candidate.
func BenchmarkServeTopKCached(b *testing.B) {
	m, inst, candidates := benchServingSetup(b)
	eng := seqfm.NewEngine(m, seqfm.EngineConfig{})
	defer eng.Close()
	req := seqfm.TopKRequest{Base: inst, Candidates: candidates, K: 10}
	_ = eng.TopK(req) // warm the caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.TopK(req)
	}
}

// BenchmarkServeTopKCachedSingleWorker is the warm path without
// parallelism — the per-request floor on one core.
func BenchmarkServeTopKCachedSingleWorker(b *testing.B) {
	m, inst, candidates := benchServingSetup(b)
	eng := seqfm.NewEngine(m, seqfm.EngineConfig{Workers: 1})
	defer eng.Close()
	req := seqfm.TopKRequest{Base: inst, Candidates: candidates, K: 10}
	_ = eng.TopK(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.TopK(req)
	}
}

// BenchmarkServeScoreBatch scores a mixed batch (distinct histories) — the
// /v1/score path rather than top-K.
func BenchmarkServeScoreBatch(b *testing.B) {
	m, inst, candidates := benchServingSetup(b)
	eng := seqfm.NewEngine(m, seqfm.EngineConfig{})
	defer eng.Close()
	insts := make([]seqfm.Instance, benchJ)
	for i, c := range candidates {
		ci := inst
		ci.Target = c
		ci.Hist = append(append([]int{}, inst.Hist...), c) // distinct history per instance
		insts[i] = ci
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.ScoreBatch(insts)
	}
}

// BenchmarkServeCachePolicy pins the LRU-upgrade satellite: skewed top-K
// traffic (a few hot users, a marching tail) over a static cache smaller
// than the working set. FIFO ages the hot users' rows out on schedule; LRU's
// touch-on-hit keeps them resident. The benchmark reports the realised
// static-cache hit rate alongside ns/op.
func BenchmarkServeCachePolicy(b *testing.B) {
	for _, pc := range []struct {
		name   string
		policy seqfm.CachePolicy
	}{{"fifo", seqfm.CacheFIFO}, {"lru", seqfm.CacheLRU}} {
		b.Run(pc.name, func(b *testing.B) {
			m, inst, candidates := benchServingSetup(b)
			// Cache capacity: the hot request's J rows fit comfortably, but
			// two rounds of marching cold rows overflow it. LRU's
			// touch-on-hit keeps the hot rows (re-touched every other
			// request) resident and evicts the dead cold rows; FIFO evicts
			// strictly by insertion age, so the cold stream flushes the hot
			// rows out on schedule.
			eng := seqfm.NewEngine(m, seqfm.EngineConfig{
				Workers:         1,
				CachePolicy:     pc.policy,
				StaticCacheSize: 2*benchJ + benchJ/2,
			})
			defer eng.Close()
			hot := seqfm.TopKRequest{Base: inst, Candidates: candidates, K: 10}
			coldBase := inst
			coldBase.User = 999
			cold := make([]int, benchJ) // marching one-shot candidates
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = eng.TopK(hot)
				for j := range cold {
					cold[j] = (i*benchJ + j) % 2000
				}
				_ = eng.TopK(seqfm.TopKRequest{Base: coldBase, Candidates: cold, K: 10})
			}
			b.StopTimer()
			s := eng.Stats()
			if probes := s.StaticHits + s.StaticMisses; probes > 0 {
				b.ReportMetric(float64(s.StaticHits)/float64(probes), "hit-rate")
			}
		})
	}
}

// BenchmarkServeHotSwapUnderLoad measures steady-state top-K latency while a
// background publisher hot-swaps model clones at a fixed cadence — the
// serving-side cost of the online-learning loop. Compare against
// BenchmarkServeTopKCached (the no-swap steady state). The acceptance bar is
// on absolute swapping p50, not the ratio — compiled serving shrank the
// steady-state denominator (see EXPERIMENTS.md's hot-swap table).
func BenchmarkServeHotSwapUnderLoad(b *testing.B) {
	m, inst, candidates := benchServingSetup(b)
	eng := seqfm.NewEngine(m, seqfm.EngineConfig{})
	defer eng.Close()
	req := seqfm.TopKRequest{Base: inst, Candidates: candidates, K: 10}
	_ = eng.TopK(req)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cur := m
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			next := cur.Clone()
			next.Params()[0].Value.Data[0] += 1e-6
			eng.Swap(next)
			cur = next
		}
	}()
	b.Cleanup(func() {
		close(stop)
		<-done
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.TopK(req)
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Stats().Swaps), "swaps")
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- retrieval-path benchmarks ------------------------------------------
//
// Tiny-N smoke versions of seqfm-bench -mode index (which measures
// 10k/100k/1M catalogs for BENCH_index.json): CI runs these at -benchtime=1x
// to catch build-path regressions and to assert the recall floor — a
// retrieval index that silently loses recall is worse than a slow one.

// benchIndexSetup builds a small random store plus its exact ground truth.
func benchIndexSetup(b *testing.B, n, d int) (*seqfm.ItemStore, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	store := index.BuildStore(ids, d, func(id int, dst []float64) {
		for j := range dst {
			dst[j] = rng.NormFloat64()
		}
	})
	queries := make([][]float64, 20)
	for i := range queries {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}
	return store, queries
}

// BenchmarkIndexHNSWBuild measures graph construction on a 2k-item store.
func BenchmarkIndexHNSWBuild(b *testing.B) {
	store, _ := benchIndexSetup(b, 2000, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = index.NewHNSW(store, index.Config{Seed: 1})
	}
}

// BenchmarkIndexHNSWSearch measures query latency on a prebuilt graph and
// asserts the recall floor against the exact flat scan — the smoke-level
// version of the BENCH_index.json acceptance bar.
func BenchmarkIndexHNSWSearch(b *testing.B) {
	store, queries := benchIndexSetup(b, 2000, 32)
	h := index.NewHNSW(store, index.Config{Seed: 1})
	flat := index.NewFlat(store)
	var recall float64
	for _, q := range queries {
		exact := flat.Search(q, 100, nil)
		hits := 0
		got := map[int]bool{}
		for _, r := range h.Search(q, 100, nil) {
			got[r.ID] = true
		}
		for _, r := range exact {
			if got[r.ID] {
				hits++
			}
		}
		recall += float64(hits) / float64(len(exact))
	}
	if recall /= float64(len(queries)); recall < 0.95 {
		b.Fatalf("recall@100 = %.4f < 0.95 on the smoke workload", recall)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Search(queries[i%len(queries)], 100, nil)
	}
}

// BenchmarkIndexFlatSearch is the exact-scan reference on the same store.
func BenchmarkIndexFlatSearch(b *testing.B) {
	store, queries := benchIndexSetup(b, 2000, 32)
	flat := index.NewFlat(store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = flat.Search(queries[i%len(queries)], 100, nil)
	}
}

// BenchmarkIndexRecommend measures the end-to-end two-stage pipeline on the
// standard serving workload's model: ANN retrieve from the whole catalog,
// exclude seen, exact re-rank top-10.
func BenchmarkIndexRecommend(b *testing.B) {
	m, inst, _ := benchServingSetup(b)
	objects := make([]int, 2000) // serve.BenchWorkload's catalog
	for i := range objects {
		objects[i] = i
	}
	eng := seqfm.NewEngine(m, seqfm.EngineConfig{
		Index: &seqfm.IndexConfig{Objects: objects},
	})
	defer eng.Close()
	req := seqfm.RecommendRequest{Base: inst, K: 10}
	if _, err := eng.Recommend(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Recommend(req); err != nil {
			b.Fatal(err)
		}
	}
}

// --- training-path benchmarks -------------------------------------------
//
// The training scenario behind the paper's Figure 4 efficiency claim: one
// BPR epoch draws 1+N candidates per positive, and the candidate-independent
// dynamic subgraph (dynamic view, dynamic linear/embedding halves, dynamic
// Q/K/V row-blocks of the cross view) is identical across those candidates.
// The pre-refactor engine (train.LegacyRanking: fresh tape per instance, one
// full Score per candidate, per-instance mutex flush) pays for it 1+N times;
// the sharded engine (train.Ranking) records it once per instance and
// backpropagates through it once, with per-worker tapes and gradient shards.
// Compare:
//
//	go test -bench='BenchmarkTrain' -benchmem
//
// The acceptance bar is ≥2× over the legacy path for a ranking epoch at
// Negatives=5 on one core; EXPERIMENTS.md records reference numbers and
// seqfm-bench -mode train emits the machine-readable BENCH_train.json.

// benchTrainSetup builds the standard training-benchmark workload — a small
// synthetic check-in dataset and a SeqFM at the paper's default
// configuration {d=64, l=1, n.=20} — shared with seqfm-bench -mode train via
// train.BenchWorkload so BENCH_train.json stays comparable to these numbers.
func benchTrainSetup(b *testing.B) (*core.Model, *seqfm.Split) {
	b.Helper()
	m, split, err := train.BenchWorkload()
	if err != nil {
		b.Fatal(err)
	}
	return m, split
}

func benchTrainConfig(negatives, workers int) seqfm.TrainConfig {
	return train.BenchConfig(negatives, workers)
}

// BenchmarkTrainRankingLegacy is the pre-refactor reference: per-candidate
// monolithic forwards, fresh per-instance tapes, mutex gradient flushes.
func BenchmarkTrainRankingLegacy(b *testing.B) {
	for _, n := range []int{1, 5, 10} {
		b.Run(benchName("neg", n), func(b *testing.B) {
			m, split := benchTrainSetup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := train.LegacyRanking(m, split, benchTrainConfig(n, 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainRankingEngine is the sharded candidate-sharing engine on one
// core — the apples-to-apples comparison against the legacy path.
func BenchmarkTrainRankingEngine(b *testing.B) {
	for _, n := range []int{1, 5, 10} {
		b.Run(benchName("neg", n), func(b *testing.B) {
			m, split := benchTrainSetup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := train.Ranking(m, split, benchTrainConfig(n, 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainRankingEngineParallel adds worker fan-out on top of
// candidate sharing — the full training engine at GOMAXPROCS.
func BenchmarkTrainRankingEngineParallel(b *testing.B) {
	m, split := benchTrainSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Ranking(m, split, benchTrainConfig(5, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainClassificationEngine covers the log-loss task (same
// candidate-sharing structure as ranking).
func BenchmarkTrainClassificationEngine(b *testing.B) {
	m, split := benchTrainSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Classification(m, split, benchTrainConfig(5, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainRegressionEngine covers the squared-loss task (one candidate
// per instance: measures tape reuse and sharding alone).
func BenchmarkTrainRegressionEngine(b *testing.B) {
	m, split := benchTrainSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Regression(m, split, benchTrainConfig(0, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- durability (WAL) benchmarks ----------------------------------------

// benchWALSetup drives the shared WAL-bench stream (online.DriveBenchLog —
// the same driver seqfm-bench -mode wal measures) into a temp log and
// returns it with the covering checkpoint, the substrate for the replay
// bench.
func benchWALSetup(b *testing.B, events int) (dir string, ckptBytes []byte, ds *seqfm.Dataset) {
	b.Helper()
	_, ds, err := online.BenchWorkload()
	if err != nil {
		b.Fatal(err)
	}
	dir = b.TempDir()
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	ckptBytes, err = online.DriveBenchLog(log, events)
	if err != nil {
		b.Fatal(err)
	}
	return dir, ckptBytes, ds
}

// BenchmarkWALAppendGroupCommit measures durable ingest under the default
// pipelined group commit: concurrent appenders share each fsync cycle.
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	log, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	payload := wal.EncodeRecord(wal.Record{Type: wal.RecEvent, User: 1, Object: 2, Label: 1, TS: 1})
	b.ReportAllocs()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := log.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALAppendFsyncEach is the per-event-fsync baseline the group
// commit is measured against (BENCH_wal.json's acceptance ratio).
func BenchmarkWALAppendFsyncEach(b *testing.B) {
	log, err := wal.Open(b.TempDir(), wal.Options{Policy: wal.SyncEach})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	payload := wal.EncodeRecord(wal.Record{Type: wal.RecEvent, User: 1, Object: 2, Label: 1, TS: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures snapshot-covered recovery replay (rebuild
// histories, queues and sampling state; no re-training) and asserts the
// replay-throughput floor — a recovery path that cannot outrun ingest by a
// wide margin would turn every restart into an outage.
func BenchmarkWALReplay(b *testing.B) {
	const events = 2000
	dir, ckptBytes, ds := benchWALSetup(b, events)
	replayOnce := func() *online.ReplayStats {
		log, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		m, f, err := ckpt.Load(bytes.NewReader(ckptBytes))
		if err != nil {
			b.Fatal(err)
		}
		eng := serve.NewEngine(m, serve.Config{Workers: 1})
		defer eng.Close()
		l, err := online.NewLearnerFromSnapshot(m, f, ds, eng, online.Config{
			Train:     online.BenchTrainConfig(),
			BatchSize: 64,
			Log:       log,
		})
		if err != nil {
			b.Fatal(err)
		}
		st, err := l.ReplayLog()
		if err != nil {
			b.Fatal(err)
		}
		return &st
	}
	// Floor check on one timed pass before the measured loop.
	start := time.Now()
	st := replayOnce()
	rate := float64(st.Events) / time.Since(start).Seconds()
	if st.Events != events {
		b.Fatalf("replayed %d events, want %d", st.Events, events)
	}
	if rate < 20_000 {
		b.Fatalf("replay throughput %.0f events/s below the 20k floor", rate)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = replayOnce()
	}
}

// BenchmarkObsOverhead is the telemetry overhead guard: the warm
// single-worker top-K path bare (base) versus through the full per-request
// instrumentation a /v1/topk request pays — trace creation, context
// plumbing, stage recording, request counter, edge latency histogram
// (instrumented) — plus the hot recording path alone (record), which must
// not allocate. seqfm-bench -mode obs measures the same pair and CI holds
// the p50 ratio under 1.05 and the record path at 0 allocs/op.
func BenchmarkObsOverhead(b *testing.B) {
	m, inst, candidates := benchServingSetup(b)
	eng := seqfm.NewEngine(m, seqfm.EngineConfig{Workers: 1})
	defer eng.Close()
	req := seqfm.TopKRequest{Base: inst, Candidates: candidates, K: 10}
	_ = eng.TopK(req) // warm the caches

	reg := seqfm.NewMetricsRegistry()
	stageVec := reg.NewHistogramVec("bench_stage_seconds", "bench", "stage")
	latChild := reg.NewHistogramVec("bench_request_seconds", "bench", "endpoint").With("topk")
	reqChild := reg.NewCounterVec("bench_requests_total", "bench", "endpoint", "code").With("topk", "200")

	b.Run("base", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = eng.TopKOn(req)
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := seqfm.NewTrace("topk", stageVec)
			ctx := seqfm.WithTrace(context.Background(), tr)
			_, _ = eng.TopKOnCtx(ctx, req)
			reqChild.Add(1)
			latChild.Record(time.Since(tr.Start))
		}
	})
	b.Run("record", func(b *testing.B) {
		stageChild := stageVec.With("rank")
		if allocs := testing.AllocsPerRun(1000, func() {
			stageChild.Record(time.Microsecond)
			latChild.Record(time.Microsecond)
			reqChild.Add(1)
		}); allocs != 0 {
			b.Fatalf("hot recording path allocates: %.1f allocs/op, want 0", allocs)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stageChild.Record(time.Microsecond)
			reqChild.Add(1)
		}
	})
}
