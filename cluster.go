package seqfm

import (
	"io"

	"seqfm/internal/cluster"
	"seqfm/internal/online"
	"seqfm/internal/wal"
)

// This file is the sharded-deployment facade over internal/cluster: the
// static consistent-hash shard map, the stateless router tier, follower
// promotion with epoch fencing, and the WAL compaction loop. Within a shard,
// correctness is the replication contract plus the writer epoch; across
// shards, placement is pure hashing over a static map — no consensus
// anywhere. See DESIGN.md §14.
//
//	m, _ := seqfm.LoadShardMap("shards.json")
//	rt, _ := seqfm.NewRouter(m, seqfm.RouterConfig{MapPath: "shards.json"})
//	http.ListenAndServe(":8000", rt.Routes())

// Shard is one shard's membership: a primary base URL that accepts writes
// and zero or more read-follower URLs.
type Shard = cluster.Shard

// ShardMap is the cluster's static placement: the shard list plus the
// consistent-hash ring derived from the shard names. Placement depends only
// on names, so URL changes never move users.
type ShardMap = cluster.ShardMap

// ParseShardMap decodes, validates and rings a shard-map JSON document.
func ParseShardMap(r io.Reader) (*ShardMap, error) { return cluster.ParseShardMap(r) }

// LoadShardMap reads a shard map from a JSON file.
func LoadShardMap(path string) (*ShardMap, error) { return cluster.LoadShardMap(path) }

// Router is the stateless proxy tier: feedback to the owning shard's primary
// (with epoch fencing and one reload-and-retry on a fence), reads across the
// shard's followers with primary fallback.
type Router = cluster.Router

// RouterConfig parameterises NewRouter; the zero value serves the given map
// with a 10s-timeout client and a private metrics registry.
type RouterConfig = cluster.RouterConfig

// NewRouter builds a router over a parsed shard map.
func NewRouter(m *ShardMap, cfg RouterConfig) (*Router, error) { return cluster.NewRouter(m, cfg) }

// Epoch is a shard's writer fencing token: bumped by every promotion,
// stamped into the new primary's WAL and the write/replication protocols.
// Anything a deposed primary still emits under an older epoch is rejected by
// comparison, never merged.
type Epoch = cluster.Epoch

// Promotion describes one follower→primary takeover for Promote.
type Promotion = cluster.Promotion

// PromoteResult reports the new writer identity after a promotion.
type PromoteResult = cluster.PromoteResult

// Promote turns a caught-up follower into its shard's primary: the tail loop
// stops, a fresh WAL opens at the applied position + 1 under epoch+1 (the
// epoch record is its first, fsynced, entry), a self-contained state
// checkpoint makes the new primary recoverable from its own disk, and the
// trainer starts. The deposed primary needs no cooperation to be fenced.
func Promote(p Promotion) (PromoteResult, error) { return cluster.Promote(p) }

// CompactionConfig drives StartCompactor's periodic checkpoint-then-compact
// cycle on a primary.
type CompactionConfig = cluster.CompactionConfig

// StartCompactor periodically writes a self-contained state checkpoint and
// discards the WAL segments it covers, bounding the log while keeping
// recovery and follower bootstrap exact. The returned stop function halts
// the loop and waits out an in-flight cycle.
func StartCompactor(l *OnlineLearner, cfg CompactionConfig) (stop func()) {
	return cluster.StartCompactor(l, cfg)
}

// CompactStats reports one WAL compaction: whole sealed segments removed and
// the first sequence number still in the log.
type CompactStats = wal.CompactStats

// EpochHeader is the HTTP header carrying the writer epoch on feedback
// requests and responses — the router's fencing channel.
const EpochHeader = online.EpochHeader
