package seqfm

import (
	"net/http"

	"seqfm/internal/httpapi"
	"seqfm/internal/metrics"
	"seqfm/internal/serve"
	"seqfm/internal/traffic"
)

// Experiments is the multi-model experimentation tier (internal/serve): it
// serves several model arms — the SeqFM engine plus any baselines — from one
// process, assigns each user to an arm with a sticky salted hash (restarts
// and re-deploys keep users on their arms), and accumulates independent
// per-arm online metrics: endpoint latency histograms, feedback counts, a
// sampled online HR@K probe, and hot-swap observation lag.
//
//	exp, _ := seqfm.NewExperiments([]seqfm.ExperimentArm{
//		{Name: "seqfm", Engine: eng, Weight: 9},
//		{Name: "fm", Engine: baseline, Weight: 1},
//	}, seqfm.ExperimentsConfig{NumObjects: ds.NumObjects})
//	scores, gen, arm := exp.ScoreBatch(user, instances)
type Experiments = serve.Experiments

// ExperimentArm is one served model variant: a name, an engine and a
// relative traffic weight.
type ExperimentArm = serve.ExperimentArm

// ExperimentsConfig parameterises NewExperiments; the zero value keeps every
// default (HR@10 probes on every 4th feedback event over 100 candidates).
type ExperimentsConfig = serve.ExperimentsConfig

// ArmStats is one arm's metrics snapshot, as reported at /v1/experiments.
type ArmStats = serve.ArmStats

// Endpoint labels the per-arm latency histograms.
type Endpoint = serve.Endpoint

// The experiment tier's endpoint labels.
const (
	EndpointScore     = serve.EndpointScore
	EndpointTopK      = serve.EndpointTopK
	EndpointRecommend = serve.EndpointRecommend
	EndpointFeedback  = serve.EndpointFeedback
)

// NewExperiments builds the tier over the given arms. Arm order is part of
// the assignment contract: the same arms, weights and salt always map each
// user to the same arm.
func NewExperiments(arms []ExperimentArm, cfg ExperimentsConfig) (*Experiments, error) {
	return serve.NewExperiments(arms, cfg)
}

// AdmissionConfig bounds an endpoint group's concurrency: MaxConcurrent
// slots, a MaxQueue-deep wait queue, and a MaxWait queueing deadline.
// Arrivals beyond the queue (or past the deadline) are shed explicitly —
// ErrShed maps to HTTP 429, ErrAdmitTimeout to 503, both with Retry-After —
// so an overloaded server degrades by rejecting crisply instead of
// collapsing under unbounded goroutine pile-up.
type AdmissionConfig = serve.AdmissionConfig

// Limiter enforces an AdmissionConfig; see NewLimiter.
type Limiter = serve.Limiter

// AdmissionStats counts a Limiter's admitted and shed requests.
type AdmissionStats = serve.AdmissionStats

// The admission rejections: ErrShed (queue full — back off) and
// ErrAdmitTimeout (queued too long — the server is saturated).
var (
	ErrShed         = serve.ErrShed
	ErrAdmitTimeout = serve.ErrAdmitTimeout
)

// NewLimiter builds an admission limiter. A nil *Limiter admits everything,
// so wiring admission is optional at every call site.
func NewLimiter(cfg AdmissionConfig) *Limiter { return serve.NewLimiter(cfg) }

// LatencyHist is a concurrent log-bucketed latency histogram (32 buckets per
// decade from 1µs); Record is lock-free and Snapshot gives p50/p95/p99.
type LatencyHist = metrics.LatencyHist

// LatencySnapshot is a LatencyHist summary.
type LatencySnapshot = metrics.LatencySnapshot

// ServerConfig wires the HTTP serving surface (internal/httpapi): the
// engine and dataset are required; a learner enables /v1/feedback, an
// Experiments tier routes reads through arm assignment, and the admission
// configs bound the read and feedback paths independently.
type ServerConfig = httpapi.Config

// Server is the HTTP serving surface behind seqfm-serve, exposed as a
// library so tests and the traffic harness drive the exact production
// handlers in-process.
type Server = httpapi.Server

// NewServer builds the serving surface; (*Server).Routes returns the
// http.Handler.
func NewServer(cfg ServerConfig) (*Server, error) { return httpapi.New(cfg) }

// TrafficConfig parameterises the open-loop load generator
// (internal/traffic): offered rate, duration, Zipf user skew, diurnal rate
// modulation and endpoint mix. TrafficPlan builds the deterministic
// schedule; TrafficRun replays it against any http.Handler and reports
// per-endpoint latency percentiles, shed and error rates.
type TrafficConfig = traffic.Config

// TrafficReport is one load run's measured outcome.
type TrafficReport = traffic.Report

// TrafficSLO defines "sustainable" for TrafficSaturation: a shed-rate budget
// and an admitted read-p99 bound.
type TrafficSLO = traffic.SLO

// TrafficPlan builds the deterministic request schedule for cfg.
func TrafficPlan(cfg TrafficConfig) ([]traffic.Request, error) { return traffic.Plan(cfg) }

// TrafficRun replays a plan against h in open loop.
func TrafficRun(h http.Handler, plan []traffic.Request) *TrafficReport {
	return traffic.Run(h, plan)
}

// TrafficSaturation searches for the highest offered rate h sustains under
// the SLO (geometric ramp, then bisection) and returns it with every
// probe's report.
func TrafficSaturation(h http.Handler, cfg TrafficConfig, slo TrafficSLO, maxProbes int) (float64, []*TrafficReport, error) {
	return traffic.Saturation(h, cfg, slo, maxProbes)
}
