package seqfm_test

import (
	"math"
	"sync"
	"testing"

	"seqfm"
	"seqfm/internal/ag"
)

// TestPublicAPIEndToEnd exercises the exact workflow documented in the
// package comment, through the public facade only.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := seqfm.GeneratePOI(seqfm.GowallaConfig(0.001, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Task != seqfm.Ranking {
		t.Fatal("task")
	}
	stats := seqfm.ComputeStats(ds)
	if stats.Instances == 0 {
		t.Fatal("empty dataset")
	}
	split := seqfm.NewSplit(ds)
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim = 8
	cfg.MaxSeqLen = 6
	model, err := seqfm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := seqfm.TrainRanking(model, split, seqfm.TrainConfig{
		Epochs: 3, BatchSize: 32, LR: 3e-3, Negatives: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.FinalLoss() >= hist.Epochs[0].Loss {
		t.Fatalf("loss %.4f -> %.4f", hist.Epochs[0].Loss, hist.FinalLoss())
	}
	r := seqfm.EvalRanking(model, split, seqfm.EvalConfig{J: 20, Ks: []int{5}})
	if r.HR[5] < 0 || r.HR[5] > 1 {
		t.Fatalf("HR@5=%v", r.HR[5])
	}
	s := seqfm.Score(model, split.Test[0])
	if math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("score %v", s)
	}
}

// TestPublicRetrievalEndToEnd exercises the full-catalog retrieval facade:
// an indexed engine recommending from the whole catalog, and a standalone
// retriever verified against the exact flat backend.
func TestPublicRetrievalEndToEnd(t *testing.T) {
	ds, err := seqfm.GeneratePOI(seqfm.GowallaConfig(0.001, 9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim = 8
	cfg.MaxSeqLen = 6
	model, err := seqfm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := seqfm.NewEngine(model, seqfm.EngineConfig{
		Index: &seqfm.IndexConfig{Objects: ds.Objects()},
	})
	defer eng.Close()
	var hist []int
	for _, it := range ds.Users[0] {
		hist = append(hist, it.Object)
	}
	items, err := eng.Recommend(seqfm.RecommendRequest{
		Base: seqfm.Instance{User: 0, Hist: hist, UserAttr: -1, TargetAttr: -1},
		K:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("got %d recommendations, want 5", len(items))
	}
	seen := map[int]bool{}
	for _, o := range hist {
		seen[o] = true
	}
	for _, it := range items {
		if seen[it.Object] {
			t.Fatalf("already-seen object %d recommended", it.Object)
		}
	}

	store := seqfm.NewItemStore(model, ds.Objects())
	hnsw := seqfm.NewRetriever(seqfm.IndexHNSW, store, seqfm.RetrieverConfig{})
	flat := seqfm.NewRetriever(seqfm.IndexFlat, store, seqfm.RetrieverConfig{})
	if hnsw.Len() != flat.Len() || hnsw.Len() != ds.NumObjects {
		t.Fatalf("retriever sizes: hnsw %d, flat %d, catalog %d", hnsw.Len(), flat.Len(), ds.NumObjects)
	}
}

func TestPublicAPIClassificationAndRegression(t *testing.T) {
	ctr, err := seqfm.GenerateCTR(seqfm.TaobaoConfig(0.0008, 2))
	if err != nil {
		t.Fatal(err)
	}
	csplit := seqfm.NewSplit(ctr)
	cm, err := seqfm.New(seqfm.Config{Space: ctr.Space(), Dim: 8, Layers: 1,
		MaxSeqLen: 6, KeepProb: 0.9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seqfm.TrainClassification(cm, csplit, seqfm.TrainConfig{
		Epochs: 2, BatchSize: 32, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	cres := seqfm.EvalClassification(cm, csplit, seqfm.EvalConfig{})
	if cres.AUC < 0 || cres.AUC > 1 {
		t.Fatalf("AUC=%v", cres.AUC)
	}

	rat, err := seqfm.GenerateRating(seqfm.BeautyConfig(0.001, 3))
	if err != nil {
		t.Fatal(err)
	}
	rsplit := seqfm.NewSplit(rat)
	rm, err := seqfm.New(seqfm.Config{Space: rat.Space(), Dim: 8, Layers: 1,
		MaxSeqLen: 6, KeepProb: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seqfm.TrainRegression(rm, rsplit, seqfm.TrainConfig{
		Epochs: 4, BatchSize: 32, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	rres := seqfm.EvalRegression(rm, rsplit, seqfm.EvalConfig{})
	if rres.MAE < 0 || math.IsNaN(rres.RRSE) {
		t.Fatalf("regression result %+v", rres)
	}
}

// TestScoreFacadeCompiledParity pins the one-off scoring satellite: Score
// serves SeqFM through a cached compiled plan, bit-identical to a fresh
// autodiff tape, and stays so across repeated and concurrent calls (the plan
// cache and exec pool are shared).
func TestScoreFacadeCompiledParity(t *testing.T) {
	ds, err := seqfm.GeneratePOI(seqfm.GowallaConfig(0.001, 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim = 8
	cfg.MaxSeqLen = 6
	m, err := seqfm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	split := seqfm.NewSplit(ds)
	insts := split.Test
	if len(insts) > 24 {
		insts = insts[:24]
	}
	want := make([]float64, len(insts))
	for i, inst := range insts {
		want[i] = m.Score(ag.NewTape(), inst).Value.ScalarValue()
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				for i, inst := range insts {
					if got := seqfm.Score(m, inst); got != want[i] {
						t.Errorf("inst %d: facade %v != tape %v (not bit-identical)", i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestPublicAblation(t *testing.T) {
	ds, err := seqfm.GeneratePOI(seqfm.FoursquareConfig(0.001, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim = 8
	cfg.Ablation = seqfm.Ablation{NoDynamicView: true}
	m, err := seqfm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() <= 0 {
		t.Fatal("params")
	}
}

func TestPublicFilterInactive(t *testing.T) {
	ds, err := seqfm.GeneratePOI(seqfm.GowallaConfig(0.001, 5))
	if err != nil {
		t.Fatal(err)
	}
	filtered := seqfm.FilterInactive(ds, 10, 1)
	if filtered.NumUsers > ds.NumUsers {
		t.Fatal("filter grew the dataset")
	}
}

// TestPublicDurabilityEndToEnd exercises the durability facade: a WAL-backed
// learner ingests and trains, a second learner recovers from the log alone,
// and a replica converges from a checkpoint + log source.
func TestPublicDurabilityEndToEnd(t *testing.T) {
	ds, err := seqfm.GeneratePOI(seqfm.GowallaConfig(0.001, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim, cfg.Layers, cfg.MaxSeqLen = 8, 1, 6
	m, err := seqfm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wlog, err := seqfm.OpenWAL(dir, seqfm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := seqfm.NewEngine(m.Clone(), seqfm.EngineConfig{Workers: 1})
	defer eng.Close()
	l, err := seqfm.NewOnlineLearner(m, ds, eng, seqfm.OnlineConfig{
		Train: seqfm.TrainConfig{Seed: 3, Workers: 1, LR: 0.01, Negatives: 1},
		Log:   wlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := l.Ingest(i%ds.NumUsers, (i*3)%ds.NumObjects, 1); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := l.Sync(); n != 12 {
		t.Fatalf("trained on %d", n)
	}
	if st := l.Stats(); st.LogDurableSeq == 0 || st.AppliedSeq == 0 {
		t.Fatalf("durability stats empty: %+v", st)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover a second learner purely from the log.
	wlog2, err := seqfm.OpenWAL(dir, seqfm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog2.Close()
	eng2 := seqfm.NewEngine(m.Clone(), seqfm.EngineConfig{Workers: 1})
	defer eng2.Close()
	l2, err := seqfm.NewOnlineLearner(m.Clone(), ds, eng2, seqfm.OnlineConfig{
		Train: seqfm.TrainConfig{Seed: 3, Workers: 1, LR: 0.01, Negatives: 1},
		Log:   wlog2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := l2.ReplayLog()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 12 || st.Steps == 0 {
		t.Fatalf("replay stats %+v", st)
	}
	if eng.Generation() != eng2.Generation() {
		t.Fatalf("generations diverge: %d vs %d", eng.Generation(), eng2.Generation())
	}
}
