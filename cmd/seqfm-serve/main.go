// Command seqfm-serve exposes a SeqFM model as a low-latency HTTP scoring
// service backed by the batched inference engine — and, with -online, as a
// live system: interaction feedback streams in over HTTP, a background
// trainer fine-tunes a shadow model, and fresh weights are hot-swapped into
// the serving path with zero downtime.
//
// On startup it materialises a stand-in dataset, then either loads a
// checkpoint or trains in-process, and serves:
//
//	GET  /healthz      — liveness plus engine statistics
//	POST /v1/score     — {"instances":[{"user":u,"target":o,"hist":[...]}]}
//	                     → {"scores":[...]}
//	POST /v1/topk      — {"user":u,"hist":[...],"candidates":[...],"k":10}
//	                     → {"items":[{"object":o,"score":s}, ...]}
//	POST /v1/recommend — {"user":u,"hist":[...],"k":10,"n":500}
//	                     → {"items":[...],"generation":g,"retrieved":n}
//	                     (requires -index: full-catalog ANN retrieval +
//	                     exact re-rank; already-seen objects are excluded
//	                     unless "include_seen":true)
//	POST /v1/feedback  — {"user":u,"object":o,"label":1} or {"events":[...]}
//	                     → {"accepted":n,"pending":p}   (requires -online)
//	GET  /v1/model     — serving generation, config, online-trainer and
//	                     retrieval-index counters
//
// In /v1/topk and /v1/recommend, "hist" defaults to the user's live history
// (dataset log plus every ingested event); /v1/topk's "candidates" defaults
// to every object; item attributes are filled from the dataset's
// side-information tables.
//
// With -index, the catalog index is warm-built at boot (before the listener
// opens) and rebuilt inside every hot swap, so /v1/recommend never serves
// one generation's embeddings against another's weights.
//
// Checkpoints: -save writes the self-describing ckpt v2 format (config +
// weights), which -checkpoint loads with no matching flags needed. Legacy v1
// checkpoints (weights only) require -config-from-flags, acknowledging that
// the model shape comes from -dataset/-scale rather than the file. With
// -online and -snapshot, the fine-tuned model (with optimizer state) is
// written atomically every -snapshot-every, and a v2 -checkpoint warm-starts
// the online trainer from the embedded optimizer state.
//
// Durability and replication: with -online -wal DIR, every ingested event is
// appended to a segmented write-ahead log before it is enqueued (group-commit
// fsync by default; see -wal-sync), and snapshots record their log position.
// On boot the server recovers: torn log tails are truncated, the latest
// -snapshot file (when present) is restored, and the log suffix is replayed
// through the normal ingest path — bit-identical to never having crashed.
// The same log feeds follower replication: GET /v1/replica/snapshot and
// /v1/replica/log, and a replica started with -follow <primary-url>
// bootstraps from the primary's snapshot, tails its log, and serves
// /v1/score, /v1/topk and /v1/recommend read traffic under the primary's
// generation numbering (/v1/feedback is 409 on a follower — replicas are
// read-only). The follower must be started with the same -dataset/-scale/
// -seed/-workers as its primary: replication is deterministic replay, so the
// replica's trainer must derive the same random streams.
//
// Shutdown is graceful: SIGINT/SIGTERM drains HTTP (http.Server.Shutdown),
// runs a final fine-tune sync, writes a final -snapshot, and flushes the WAL
// before exit.
//
// Usage:
//
//	seqfm-serve -dataset gowalla -scale tiny -addr :8080
//	seqfm-serve -dataset beauty -scale small -epochs 8 -save beauty.ckpt
//	seqfm-serve -dataset beauty -scale small -checkpoint beauty.ckpt
//	seqfm-serve -dataset gowalla -online -snapshot live.ckpt -snapshot-every 30s
//	seqfm-serve -dataset gowalla -online -wal ./wal -snapshot live.ckpt
//	seqfm-serve -dataset gowalla -follow http://primary:8080 -addr :8081
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seqfm/internal/ckpt"
	"seqfm/internal/core"
	"seqfm/internal/data"
	"seqfm/internal/experiments"
	"seqfm/internal/feature"
	"seqfm/internal/index"
	"seqfm/internal/online"
	"seqfm/internal/serve"
	"seqfm/internal/train"
	"seqfm/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		dataset     = flag.String("dataset", "gowalla", "gowalla|foursquare|trivago|taobao|beauty|toys")
		scale       = flag.String("scale", "tiny", "tiny|small|medium|full")
		epochs      = flag.Int("epochs", 0, "override training epochs (0 = scale default)")
		seed        = flag.Int64("seed", 7, "master seed")
		checkpoint  = flag.String("checkpoint", "", "load model from this file instead of training (ckpt v2, or v1 with -config-from-flags)")
		cfgFlags    = flag.Bool("config-from-flags", false, "allow loading a legacy v1 checkpoint, taking the model config from -dataset/-scale")
		save        = flag.String("save", "", "write the trained model to this file (ckpt v2)")
		workers     = flag.Int("workers", 0, "engine scoring goroutines (0 = GOMAXPROCS)")
		batchSize   = flag.Int("batch-size", 0, "micro-batch flush threshold for single-score requests (0 = default, 1 = off)")
		maxDelay    = flag.Duration("max-delay", 0, "micro-batch flush deadline (0 = default)")
		staticCache = flag.Int("static-cache", 0, "static-view cache entries (0 = default, <0 = off)")
		dynCache    = flag.Int("dyn-cache", 0, "dynamic-state cache entries (0 = default, <0 = off)")

		indexOn      = flag.Bool("index", false, "build the full-catalog retrieval index (/v1/recommend)")
		indexBackend = flag.String("index-backend", "hnsw", "retrieval backend: hnsw|flat")
		indexM       = flag.Int("index-m", 0, "HNSW links per node per layer (0 = default)")
		indexEfCons  = flag.Int("index-ef-construction", 0, "HNSW build beam width (0 = default)")
		indexEfSrch  = flag.Int("index-ef-search", 0, "HNSW query beam width (0 = default)")
		indexWorkers = flag.Int("index-build-workers", -1, "index build goroutines for the boot warm-build and every hot-swap rebuild (-1 = GOMAXPROCS, 1 = sequential/deterministic)")
		recallSample = flag.Int("recall-sample", 0, "with -index: every Nth recommend also flat-scans and records observed recall (0 = off)")

		onlineOn     = flag.Bool("online", false, "enable the online-learning subsystem (/v1/feedback, background fine-tune, hot swap)")
		onlineEvery  = flag.Duration("online-interval", 0, "online trainer cadence (0 = default)")
		onlineBatch  = flag.Int("online-batch", 0, "online fine-tune minibatch size (0 = default)")
		onlineLR     = flag.Float64("online-lr", 0, "online fine-tune learning rate (0 = checkpoint's saved rate on warm start, else 1e-3)")
		snapshotPath = flag.String("snapshot", "", "with -online: periodically write the fine-tuned model (ckpt v2) to this path; reloaded on boot for WAL recovery")
		snapshotEvry = flag.Duration("snapshot-every", time.Minute, "snapshot cadence")

		walDir      = flag.String("wal", "", "with -online: durable write-ahead log directory (event durability, replay recovery, replication source)")
		walSync     = flag.String("wal-sync", "group", "WAL fsync policy: group (batched group commit) | each (fsync per event) | none (page cache only)")
		walFlushInt = flag.Duration("wal-flush-interval", 0, "WAL OS-flush cadence under -wal-sync none (0 = default 2ms; group commit pipelines eagerly)")
		walFlushB   = flag.Int("wal-flush-bytes", 0, "WAL inline-flush byte threshold bounding buffer growth (0 = default 256KiB)")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size (0 = default 64MiB)")

		follow     = flag.String("follow", "", "follower mode: primary base URL to bootstrap from and tail (read replica)")
		followWait = flag.Duration("follow-wait", 0, "follower long-poll window per log fetch (0 = default 2s)")

		drainBudget = flag.Duration("shutdown-timeout", 15*time.Second, "graceful HTTP drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	// Tuning flags whose primary flag is absent would be silently dropped
	// (the server would boot without the subsystem and 409 the traffic);
	// fail fast instead, like -recall-sample and -snapshot do.
	requireFlag := func(primary string, on bool, names ...string) {
		if on {
			return
		}
		var stray []string
		flag.Visit(func(f *flag.Flag) {
			for _, n := range names {
				if f.Name == n {
					stray = append(stray, "-"+n)
				}
			}
		})
		if len(stray) > 0 {
			fmt.Fprintf(os.Stderr, "seqfm-serve: %s requires %s\n", strings.Join(stray, ", "), primary)
			os.Exit(1)
		}
	}
	requireFlag("-index", *indexOn, "index-backend", "index-m", "index-ef-construction", "index-ef-search", "index-build-workers")
	requireFlag("-wal", *walDir != "", "wal-sync", "wal-flush-interval", "wal-flush-bytes", "wal-segment-bytes")
	requireFlag("-follow", *follow != "", "follow-wait")
	if *follow != "" {
		// A follower is a read replica driven entirely by its primary's log:
		// local training, durability and checkpointing flags contradict it.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "online", "online-interval", "online-batch", "online-lr", "snapshot", "snapshot-every", "wal", "checkpoint", "save", "epochs":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			fmt.Fprintf(os.Stderr, "seqfm-serve: %s conflicts with -follow (a follower replicates its primary)\n", strings.Join(conflict, ", "))
			os.Exit(1)
		}
	}

	opts := serveOpts{
		addr: *addr, dataset: *dataset, scale: *scale, epochs: *epochs, seed: *seed,
		checkpoint: *checkpoint, configFromFlags: *cfgFlags, save: *save,
		engine: serve.Config{
			Workers:         *workers,
			BatchSize:       *batchSize,
			MaxDelay:        *maxDelay,
			StaticCacheSize: *staticCache,
			DynCacheSize:    *dynCache,
		},
		index: *indexOn, indexBackend: *indexBackend, indexM: *indexM,
		indexEfConstruction: *indexEfCons, indexEfSearch: *indexEfSrch,
		indexBuildWorkers: *indexWorkers, recallSample: *recallSample,
		online: *onlineOn, onlineInterval: *onlineEvery, onlineBatch: *onlineBatch,
		onlineLR: *onlineLR, snapshotPath: *snapshotPath, snapshotEvery: *snapshotEvry,
		walDir: *walDir, walSync: *walSync, walFlushInterval: *walFlushInt,
		walFlushBytes: *walFlushB, walSegmentBytes: *walSegBytes,
		follow: *follow, followWait: *followWait, drainBudget: *drainBudget,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "seqfm-serve:", err)
		os.Exit(1)
	}
}

type serveOpts struct {
	addr, dataset, scale string
	epochs               int
	seed                 int64
	checkpoint, save     string
	configFromFlags      bool
	engine               serve.Config
	index                bool
	indexBackend         string
	indexM               int
	indexEfConstruction  int
	indexEfSearch        int
	indexBuildWorkers    int
	recallSample         int
	online               bool
	onlineInterval       time.Duration
	onlineBatch          int
	onlineLR             float64
	snapshotPath         string
	snapshotEvery        time.Duration

	walDir           string
	walSync          string
	walFlushInterval time.Duration
	walFlushBytes    int
	walSegmentBytes  int64

	follow     string
	followWait time.Duration

	drainBudget time.Duration
}

func run(o serveOpts) error {
	if o.follow != "" {
		return runFollower(o)
	}
	// Reject inconsistent flags before any expensive work (dataset build,
	// in-process training) is thrown away on them.
	if o.snapshotPath != "" && !o.online {
		return fmt.Errorf("-snapshot requires -online")
	}
	if o.walDir != "" && !o.online {
		return fmt.Errorf("-wal requires -online (the log records the online event stream)")
	}
	var backend index.Backend
	if o.index {
		var err error
		if backend, err = index.ParseBackend(o.indexBackend); err != nil {
			return err
		}
		if o.recallSample > 0 && backend == index.BackendFlat {
			return fmt.Errorf("-recall-sample is meaningless with -index-backend flat: the flat scan is exact (recall is identically 1)")
		}
	} else if o.recallSample > 0 {
		return fmt.Errorf("-recall-sample requires -index")
	}
	p := experiments.ParamsFor(experiments.Scale(o.scale))
	p.Seed = o.seed
	if o.epochs > 0 {
		p.Epochs = o.epochs
	}
	ds, err := buildDataset(p, o.dataset)
	if err != nil {
		return err
	}

	// Open (and recover) the WAL before deciding where the model comes
	// from: with durability on, the freshest state is the -snapshot file
	// plus the log suffix beyond it, and that pair wins over -checkpoint
	// and over re-training.
	var walLog *wal.Log
	if o.walDir != "" {
		policy, err := wal.ParsePolicy(o.walSync)
		if err != nil {
			return err
		}
		walLog, err = wal.Open(o.walDir, wal.Options{
			SegmentBytes:  o.walSegmentBytes,
			Policy:        policy,
			FlushInterval: o.walFlushInterval,
			FlushBytes:    o.walFlushBytes,
		})
		if err != nil {
			return err
		}
		defer walLog.Close()
		rec := walLog.Recovered()
		if walLog.Truncated() {
			log.Printf("WAL %s: torn tail truncated; recovered through seq %d (segment %d offset %d)",
				o.walDir, rec.Seq, rec.Segment, rec.Offset)
		} else {
			log.Printf("WAL %s: clean; %d records across %d segment(s)", o.walDir, rec.Seq, walLog.Segments())
		}
	}
	checkpointPath := o.checkpoint
	if walLog != nil && o.snapshotPath != "" {
		if _, statErr := os.Stat(o.snapshotPath); statErr == nil {
			checkpointPath = o.snapshotPath
			log.Printf("recovery: restoring snapshot %s (overrides -checkpoint/-epochs for the base weights)", o.snapshotPath)
		}
	}

	var model *core.Model
	var snapshot *ckpt.File // non-nil when the checkpoint was ckpt v2
	if checkpointPath != "" {
		model, snapshot, err = loadCheckpoint(checkpointPath, o.configFromFlags, p, ds)
		if err != nil {
			return err
		}
	} else {
		if model, err = p.SeqFM(ds.Space(), core.Ablation{}); err != nil {
			return err
		}
		split := data.NewSplit(ds)
		cfg := p.TrainConfig()
		if ds.Task == data.Regression {
			cfg = p.RegressionTrainConfig()
		}
		cfg.Logf = log.Printf
		log.Printf("training seqfm on %s (%d train instances)", ds.Name, len(split.Train))
		hist, err := trainFor(model, split, cfg, ds.Task)
		if err != nil {
			return err
		}
		log.Printf("trained in %.1fs (final loss %.4f)", hist.Total.Seconds(), hist.FinalLoss())
	}
	if o.save != "" {
		if err := ckpt.SaveFile(o.save, model, nil, 0); err != nil {
			return fmt.Errorf("save %s: %w", o.save, err)
		}
		log.Printf("saved checkpoint %s (ckpt v2)", o.save)
	}

	if o.index {
		o.engine.Index = &serve.IndexConfig{
			Objects: ds.Objects(),
			Backend: backend,
			ANN: index.Config{
				M:              o.indexM,
				EfConstruction: o.indexEfConstruction,
				EfSearch:       o.indexEfSearch,
				Seed:           o.seed,
				BuildWorkers:   o.indexBuildWorkers,
			},
			RecallSampleEvery: o.recallSample,
		}
	}
	// NewEngine warm-builds generation 1's catalog index before the
	// listener opens: the first /v1/recommend never pays the build.
	eng := serve.NewEngine(model, o.engine)
	defer eng.Close()
	if o.index {
		st := eng.Stats()
		log.Printf("catalog index warm-built: backend=%s items=%d build=%.1fms",
			st.IndexBackend, st.IndexSize, float64(st.IndexBuildNanos)/1e6)
	}

	var learner *online.Learner
	if o.online {
		ocfg := online.Config{
			Train: train.Config{
				Seed:      o.seed,
				LR:        o.onlineLR,
				Workers:   o.engine.Workers,
				Negatives: p.Negatives,
			},
			BatchSize: o.onlineBatch,
			Interval:  o.onlineInterval,
			Log:       walLog,
		}
		if snapshot != nil {
			// Warm-start fine-tuning from the embedded optimizer state and
			// step counter of the already-decoded checkpoint.
			learner, err = online.NewLearnerFromSnapshot(model, snapshot, ds, eng, ocfg)
			if err != nil {
				return fmt.Errorf("warm-start from %s: %w", checkpointPath, err)
			}
			log.Printf("online trainer warm-started from %s", checkpointPath)
		} else {
			if learner, err = online.NewLearner(model, ds, eng, ocfg); err != nil {
				return err
			}
		}
		if walLog != nil {
			// Replay the log (the suffix beyond the snapshot re-trains; the
			// prefix rebuilds histories and sampling state) before the
			// trainer or the listener starts: recovery is single-threaded
			// by contract.
			start := time.Now()
			rst, err := learner.ReplayLog()
			if err != nil {
				return fmt.Errorf("wal replay: %w", err)
			}
			log.Printf("WAL replay: %d records (%d events, %d steps re-trained, %d covered by snapshot, %d drops) in %.1fms → generation %d",
				rst.Records, rst.Events, rst.Steps, rst.SkippedSteps, rst.Drops,
				float64(time.Since(start).Microseconds())/1000, eng.Generation())
		}
		learner.Start()
		defer learner.Close()
		lcfg := learner.Config() // resolved, not the raw flags
		log.Printf("online learning enabled (batch=%d, interval=%s, lr=%g, wal=%v)",
			lcfg.BatchSize, lcfg.Interval, learner.LR(), walLog != nil)
	}

	srv := newServer(eng, ds, model, learner)
	srv.walLog = walLog
	return serveUntilSignal(o, srv, func(ctx context.Context) {
		if learner == nil {
			return
		}
		if o.snapshotPath != "" {
			go snapshotLoop(ctx, learner, o.snapshotPath, o.snapshotEvery)
		}
	}, func() {
		// Ordered teardown once HTTP has drained: stop the trainer and
		// flush its backlog, persist the final state, then seal the log.
		if learner != nil {
			learner.Close()
			if o.snapshotPath != "" {
				if err := learner.CheckpointFile(o.snapshotPath); err != nil {
					log.Printf("final snapshot %s: %v", o.snapshotPath, err)
				} else {
					log.Printf("final snapshot written to %s", o.snapshotPath)
				}
			}
		}
		if walLog != nil {
			if err := walLog.Close(); err != nil {
				log.Printf("wal close: %v", err)
			}
		}
	})
}

// runFollower is -follow: bootstrap a read replica from a primary's snapshot
// endpoint, tail its log, and serve read traffic under the primary's
// generation numbering.
func runFollower(o serveOpts) error {
	var backend index.Backend
	if o.index {
		var err error
		if backend, err = index.ParseBackend(o.indexBackend); err != nil {
			return err
		}
	}
	p := experiments.ParamsFor(experiments.Scale(o.scale))
	p.Seed = o.seed
	ds, err := buildDataset(p, o.dataset)
	if err != nil {
		return err
	}
	log.Printf("follower: bootstrapping from %s", o.follow)
	model, file, bootGen, err := online.FetchSnapshot(o.follow, nil)
	if err != nil {
		return err
	}
	if model.Config().Space != ds.Space() {
		return fmt.Errorf("primary snapshot space %+v does not match local dataset %s space %+v (start the follower with the primary's -dataset/-scale)",
			model.Config().Space, ds.Name, ds.Space())
	}
	if o.index {
		o.engine.Index = &serve.IndexConfig{
			Objects: ds.Objects(),
			Backend: backend,
			ANN: index.Config{
				M:              o.indexM,
				EfConstruction: o.indexEfConstruction,
				EfSearch:       o.indexEfSearch,
				Seed:           o.seed,
				BuildWorkers:   o.indexBuildWorkers,
			},
			RecallSampleEvery: o.recallSample,
		}
	}
	eng := serve.NewEngine(model, o.engine)
	defer eng.Close()
	// The replica's stepper must derive the primary's random streams: same
	// seed, same worker count — replication is deterministic replay.
	learner, err := online.NewLearnerFromSnapshot(model, file, ds, eng, online.Config{
		Train: train.Config{
			Seed:      o.seed,
			Workers:   o.engine.Workers,
			Negatives: p.Negatives,
		},
	})
	if err != nil {
		return err
	}
	rep := online.NewReplica(learner, &online.HTTPLogSource{Base: o.follow}, bootGen, online.ReplicaConfig{Wait: o.followWait, Logf: log.Printf})
	start := time.Now()
	applied, err := rep.CatchUp()
	if err != nil {
		return fmt.Errorf("initial catch-up: %w", err)
	}
	log.Printf("follower: caught up (%d records in %.1fms) at generation %d",
		applied, float64(time.Since(start).Microseconds())/1000, eng.Generation())
	rep.Start()

	srv := newServer(eng, ds, model, learner)
	srv.replica = rep
	srv.primary = o.follow
	return serveUntilSignal(o, srv, nil, func() {
		rep.Close()
	})
}

// serveUntilSignal runs the HTTP server until SIGINT/SIGTERM, then drains
// in-flight requests (bounded by -shutdown-timeout) and runs the ordered
// teardown. onServe, when non-nil, starts signal-scoped background loops.
func serveUntilSignal(o serveOpts, srv *server, onServe func(ctx context.Context), teardown func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if onServe != nil {
		onServe(ctx)
	}
	httpSrv := &http.Server{Addr: o.addr, Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	role := "primary"
	if srv.replica != nil {
		role = "follower of " + srv.primary
	}
	log.Printf("serving %s (%d users, %d objects) on %s [%s]", srv.ds.Name, srv.ds.NumUsers, srv.ds.NumObjects, o.addr, role)
	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C force-kills
	log.Printf("shutdown: draining HTTP (budget %s)", o.drainBudget)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainBudget)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("shutdown: drain incomplete: %v", err)
	}
	teardown()
	log.Printf("shutdown complete")
	return nil
}

// loadCheckpoint opens path and dispatches on the sniffed format: v2 files
// are self-describing (and must match the dataset's feature space) and
// return their decoded ckpt.File for optimizer warm-starts; legacy v1 files
// carry only weights, so the model is built from the flag-derived config —
// an implicit dependency the operator must acknowledge with
// -config-from-flags — and the returned file is nil.
func loadCheckpoint(path string, configFromFlags bool, p experiments.Params, ds *data.Dataset) (*core.Model, *ckpt.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	switch ckpt.DetectVersion(r) {
	case ckpt.V2:
		m, file, err := ckpt.Load(r)
		if err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", path, err)
		}
		if m.Config().Space != ds.Space() {
			return nil, nil, fmt.Errorf("load %s: checkpoint space %+v does not match dataset %s space %+v",
				path, m.Config().Space, ds.Name, ds.Space())
		}
		log.Printf("loaded checkpoint %s (ckpt v2: config embedded)", path)
		return m, file, nil
	case ckpt.V1:
		if !configFromFlags {
			return nil, nil, fmt.Errorf(
				"%s is a legacy v1 checkpoint with no embedded config; pass -config-from-flags to build the model from -dataset/-scale (and re-save it as v2 with -save)", path)
		}
		m, err := p.SeqFM(ds.Space(), core.Ablation{})
		if err != nil {
			return nil, nil, err
		}
		if err := m.Load(r); err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", path, err)
		}
		log.Printf("WARNING: loaded legacy v1 checkpoint %s with config from flags (-dataset %s -scale config); mismatched flags would have been rejected only by shape, not by intent — re-save as v2",
			path, ds.Name)
		return m, nil, nil
	default:
		return nil, nil, fmt.Errorf("%s is not a seqfm checkpoint", path)
	}
}

// snapshotLoop periodically writes the fine-tuned model to disk (atomically:
// temp file + rename), so a restart can warm-start from recent weights. It
// exits with the signal context; shutdown writes one final snapshot itself.
func snapshotLoop(ctx context.Context, l *online.Learner, path string, every time.Duration) {
	if every <= 0 {
		every = time.Minute
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if err := l.CheckpointFile(path); err != nil {
			log.Printf("snapshot %s: %v", path, err)
		} else {
			log.Printf("snapshot written to %s", path)
		}
	}
}

func trainFor(m train.Model, split *data.Split, cfg train.Config, task data.Task) (*train.History, error) {
	switch task {
	case data.Ranking:
		return train.Ranking(m, split, cfg)
	case data.Classification:
		return train.Classification(m, split, cfg)
	default:
		return train.Regression(m, split, cfg)
	}
}

func buildDataset(p experiments.Params, name string) (*data.Dataset, error) {
	switch name {
	case "gowalla":
		g, _, err := p.RankingDatasets()
		return g, err
	case "foursquare":
		_, f, err := p.RankingDatasets()
		return f, err
	case "trivago":
		tv, _, err := p.CTRDatasets()
		return tv, err
	case "taobao":
		_, tb, err := p.CTRDatasets()
		return tb, err
	case "beauty":
		be, _, err := p.RatingDatasets()
		return be, err
	case "toys":
		_, to, err := p.RatingDatasets()
		return to, err
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// server holds the request handlers' shared state.
type server struct {
	eng     *serve.Engine
	ds      *data.Dataset
	model   *core.Model
	learner *online.Learner // nil unless -online or -follow
	walLog  *wal.Log        // nil unless -wal
	replica *online.Replica // nil unless -follow
	primary string          // -follow base URL
	start   time.Time
}

func newServer(eng *serve.Engine, ds *data.Dataset, model *core.Model, learner *online.Learner) *server {
	return &server{eng: eng, ds: ds, model: model, learner: learner, start: time.Now()}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/score", s.handleScore)
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/recommend", s.handleRecommend)
	mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	mux.HandleFunc("GET /v1/replica/snapshot", s.handleReplicaSnapshot)
	mux.HandleFunc("GET /v1/replica/log", s.handleReplicaLog)
	return mux
}

// handleReplicaSnapshot and handleReplicaLog are the log-shipping endpoints
// (primaries with a WAL only — a follower cannot be a replication source,
// chained replication being a later feature).
func (s *server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.learner == nil || s.learner.WAL() == nil || s.replica != nil {
		httpError(w, http.StatusConflict, fmt.Errorf("replication requires a WAL-backed primary (restart with -online -wal)"))
		return
	}
	s.learner.ServeReplicaSnapshot(w, r)
}

func (s *server) handleReplicaLog(w http.ResponseWriter, r *http.Request) {
	if s.learner == nil || s.learner.WAL() == nil || s.replica != nil {
		httpError(w, http.StatusConflict, fmt.Errorf("replication requires a WAL-backed primary (restart with -online -wal)"))
		return
	}
	s.learner.ServeReplicaLog(w, r)
}

// decodeJSON strictly decodes one JSON value from the request body: unknown
// fields and trailing garbage are errors, so malformed bodies surface as 400s
// instead of being half-accepted.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// jsonInstance is the wire form of feature.Instance. Attr fields are
// pointers so "absent" is distinguishable from attribute 0; absent attrs
// fall back to the dataset's side-information tables.
type jsonInstance struct {
	User       int   `json:"user"`
	Target     int   `json:"target"`
	Hist       []int `json:"hist"`
	UserAttr   *int  `json:"user_attr,omitempty"`
	TargetAttr *int  `json:"target_attr,omitempty"`
}

func (s *server) toInstance(j jsonInstance) (feature.Instance, error) {
	if j.User < 0 || j.User >= s.ds.NumUsers {
		return feature.Instance{}, fmt.Errorf("user %d outside [0,%d)", j.User, s.ds.NumUsers)
	}
	if j.Target < 0 || j.Target >= s.ds.NumObjects {
		return feature.Instance{}, fmt.Errorf("target %d outside [0,%d)", j.Target, s.ds.NumObjects)
	}
	for _, h := range j.Hist {
		if h < 0 || h >= s.ds.NumObjects {
			return feature.Instance{}, fmt.Errorf("hist object %d outside [0,%d)", h, s.ds.NumObjects)
		}
	}
	inst := feature.Instance{
		User: j.User, Target: j.Target, Hist: j.Hist,
		UserAttr: feature.Pad, TargetAttr: feature.Pad,
	}
	if s.ds.NumUserAttrs > 0 {
		inst.UserAttr = s.ds.UserAttr[j.User]
	}
	if j.UserAttr != nil {
		if *j.UserAttr < 0 || *j.UserAttr >= s.ds.NumUserAttrs {
			return feature.Instance{}, fmt.Errorf("user_attr %d outside [0,%d)", *j.UserAttr, s.ds.NumUserAttrs)
		}
		inst.UserAttr = *j.UserAttr
	}
	if s.ds.NumItemAttrs > 0 {
		inst.TargetAttr = s.ds.ItemAttr[j.Target]
	}
	if j.TargetAttr != nil {
		if *j.TargetAttr < 0 || *j.TargetAttr >= s.ds.NumItemAttrs {
			return feature.Instance{}, fmt.Errorf("target_attr %d outside [0,%d)", *j.TargetAttr, s.ds.NumItemAttrs)
		}
		inst.TargetAttr = *j.TargetAttr
	}
	return inst, nil
}

func (s *server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Instances []jsonInstance `json:"instances"`
	}
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	insts := make([]feature.Instance, len(req.Instances))
	for i, j := range req.Instances {
		inst, err := s.toInstance(j)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("instance %d: %w", i, err))
			return
		}
		insts[i] = inst
	}
	started := time.Now()
	scores := s.eng.ScoreBatch(insts)
	writeJSON(w, map[string]any{
		"scores":     scores,
		"elapsed_ms": float64(time.Since(started).Microseconds()) / 1000,
	})
}

// liveHistory resolves a user's default history: the online store when the
// learner runs (dataset log plus every ingested event), else the frozen log.
func (s *server) liveHistory(user int) []int {
	if s.learner != nil {
		return s.learner.History(user)
	}
	var hist []int
	for _, it := range s.ds.Users[user] {
		hist = append(hist, it.Object)
	}
	return hist
}

// baseInstance validates a request's user context and builds the base
// instance /v1/topk and /v1/recommend share: hist nil defaults to the live
// history, user attributes are filled from the side-information tables.
func (s *server) baseInstance(user int, hist []int) (feature.Instance, error) {
	if user < 0 || user >= s.ds.NumUsers {
		return feature.Instance{}, fmt.Errorf("user %d outside [0,%d)", user, s.ds.NumUsers)
	}
	if hist == nil {
		hist = s.liveHistory(user)
	}
	for _, h := range hist {
		if h < 0 || h >= s.ds.NumObjects {
			return feature.Instance{}, fmt.Errorf("hist object %d outside [0,%d)", h, s.ds.NumObjects)
		}
	}
	base := feature.Instance{User: user, Hist: hist, UserAttr: feature.Pad, TargetAttr: feature.Pad}
	if s.ds.NumUserAttrs > 0 {
		base.UserAttr = s.ds.UserAttr[user]
	}
	return base, nil
}

// attrOf returns the candidate→TargetAttr mapping for ranking requests, or
// nil when the dataset carries no item side information.
func (s *server) attrOf() func(int) int {
	if s.ds.NumItemAttrs == 0 {
		return nil
	}
	return func(o int) int { return s.ds.ItemAttr[o] }
}

// jsonItem is the wire form of one ranked candidate.
type jsonItem struct {
	Object int     `json:"object"`
	Score  float64 `json:"score"`
}

func toJSONItems(items []serve.Item) []jsonItem {
	out := make([]jsonItem, len(items))
	for i, it := range items {
		out[i] = jsonItem{Object: it.Object, Score: it.Score}
	}
	return out
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User       int   `json:"user"`
		Hist       []int `json:"hist"`
		Candidates []int `json:"candidates"`
		K          int   `json:"k"`
	}
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	base, err := s.baseInstance(req.User, req.Hist)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	candidates := req.Candidates
	if candidates == nil {
		candidates = s.ds.Objects()
	}
	for _, c := range candidates {
		if c < 0 || c >= s.ds.NumObjects {
			httpError(w, http.StatusBadRequest, fmt.Errorf("candidate %d outside [0,%d)", c, s.ds.NumObjects))
			return
		}
	}
	started := time.Now()
	items, gen := s.eng.TopKOn(serve.TopKRequest{Base: base, Candidates: candidates, K: req.K, AttrOf: s.attrOf()})
	writeJSON(w, map[string]any{
		"items":      toJSONItems(items),
		"generation": gen,
		"elapsed_ms": float64(time.Since(started).Microseconds()) / 1000,
	})
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User        int   `json:"user"`
		Hist        []int `json:"hist"`
		K           int   `json:"k"`
		N           int   `json:"n"`
		IncludeSeen bool  `json:"include_seen"`
		Exclude     []int `json:"exclude"`
	}
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	base, err := s.baseInstance(req.User, req.Hist)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	for _, o := range req.Exclude {
		if o < 0 || o >= s.ds.NumObjects {
			httpError(w, http.StatusBadRequest, fmt.Errorf("exclude object %d outside [0,%d)", o, s.ds.NumObjects))
			return
		}
	}
	rreq := serve.RecommendRequest{
		Base: base, K: req.K, N: req.N,
		IncludeSeen: req.IncludeSeen, Exclude: req.Exclude,
		AttrOf: s.attrOf(),
	}
	if s.learner != nil && !req.IncludeSeen {
		// The online store bounds the live history (a dynamic-view bound,
		// not an exclusion bound); long-history users have interactions
		// older than it. The learner's seen index never forgets, so the
		// exclusion contract stays identical with and without -online —
		// consulted as a predicate, never materialised per request.
		user := req.User
		rreq.ExcludeFunc = func(o int) bool { return s.learner.Seen(user, o) }
		rreq.ExcludeHint = s.learner.SeenCount(user)
	}
	res, err := s.eng.RecommendOn(rreq)
	if err != nil {
		httpError(w, http.StatusConflict, fmt.Errorf("retrieval disabled: %w (restart with -index)", err))
		return
	}
	writeJSON(w, map[string]any{
		"items":            toJSONItems(res.Items),
		"generation":       res.Generation,
		"index_generation": res.IndexGeneration,
		"retrieved":        res.Retrieved,
		// The engine's own measurement, net of recall-canary overhead —
		// consistent with /v1/model's avg_recommend_ms, so latency
		// monitors don't alarm on sampled requests.
		"elapsed_ms": float64(res.Elapsed.Microseconds()) / 1000,
	})
}

// jsonEvent is the wire form of one feedback interaction.
type jsonEvent struct {
	User   int      `json:"user"`
	Object int      `json:"object"`
	Label  *float64 `json:"label,omitempty"` // default 1 (implicit feedback)
}

func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if s.replica != nil {
		httpError(w, http.StatusConflict, fmt.Errorf("this is a read replica of %s; send feedback to the primary", s.primary))
		return
	}
	if s.learner == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("online learning disabled; restart with -online"))
		return
	}
	var req struct {
		User   *int        `json:"user,omitempty"`
		Object *int        `json:"object,omitempty"`
		Label  *float64    `json:"label,omitempty"`
		Events []jsonEvent `json:"events,omitempty"`
	}
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	events := req.Events
	if req.User != nil || req.Object != nil {
		if req.User == nil || req.Object == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("single event needs both user and object"))
			return
		}
		events = append(events, jsonEvent{User: *req.User, Object: *req.Object, Label: req.Label})
	}
	if len(events) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("no events in body"))
		return
	}
	// Validate the whole batch before ingesting any of it: a mid-batch
	// rejection must not leave earlier events half-applied (appended to
	// histories and the training queue) behind a plain 400 — the client
	// would retry and double-ingest them.
	for i, ev := range events {
		if ev.User < 0 || ev.User >= s.ds.NumUsers {
			httpError(w, http.StatusBadRequest, fmt.Errorf("event %d: user %d outside [0,%d)", i, ev.User, s.ds.NumUsers))
			return
		}
		if ev.Object < 0 || ev.Object >= s.ds.NumObjects {
			httpError(w, http.StatusBadRequest, fmt.Errorf("event %d: object %d outside [0,%d)", i, ev.Object, s.ds.NumObjects))
			return
		}
	}
	// One IngestBatch call: with a WAL the whole batch shares its durability
	// wait (one group-commit ack for N events) instead of paying one fsync
	// cycle per event.
	batch := make([]online.Event, len(events))
	for i, ev := range events {
		batch[i] = online.Event{User: ev.User, Object: ev.Object, Label: 1}
		if ev.Label != nil {
			batch[i].Label = *ev.Label
		}
	}
	if err := s.learner.IngestBatch(batch); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	st := s.learner.Stats()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{"accepted": len(events), "pending": st.Pending})
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	cfg := s.model.Config()
	resp := map[string]any{
		"generation": st.Generation,
		"swaps":      st.Swaps,
		"num_params": s.model.NumParams(),
		"config": map[string]any{
			"dim": cfg.Dim, "layers": cfg.Layers, "max_seq_len": cfg.MaxSeqLen,
			"users": cfg.Space.NumUsers, "objects": cfg.Space.NumObjects,
		},
		"checkpoint_format": "seqfm-ckpt-v2",
	}
	if s.learner != nil {
		ls := s.learner.Stats()
		resp["online"] = map[string]any{
			"ingested": ls.Ingested, "dropped": ls.Dropped, "pending": ls.Pending,
			"steps": ls.Steps, "swaps": ls.Swaps, "last_loss": ls.LastLoss,
			"history_users": ls.HistoryUsers,
		}
		if s.walLog != nil {
			rec := s.walLog.Recovered()
			resp["durability"] = map[string]any{
				"log_seq":         ls.LogSeq,
				"log_durable_seq": ls.LogDurableSeq,
				"log_segments":    ls.LogSegments,
				"applied_seq":     ls.AppliedSeq,
				"snapshot_seq":    ls.SnapshotSeq,
				"sync_policy":     s.walLog.Policy().String(),
				"recovered_seq":   rec.Seq,
				"recovered_torn":  s.walLog.Truncated(),
			}
		}
	}
	if s.replica != nil {
		rs := s.replica.Stats()
		resp["replica"] = map[string]any{
			"primary":             s.primary,
			"applied_seq":         rs.AppliedSeq,
			"primary_durable_seq": rs.PrimaryDurableSeq,
			"primary_generation":  rs.PrimaryGeneration,
			"lag_records":         rs.LagRecords,
			"lag_seconds":         rs.LagSeconds,
			"caught_up":           rs.CaughtUp,
			"polls":               rs.Polls,
			"poll_errors":         rs.PollErrors,
			"applied_records":     rs.Applied,
			"failed":              rs.Failed,
			"last_error":          rs.LastError,
		}
	}
	if st.IndexSize > 0 {
		idx := map[string]any{
			"backend":        st.IndexBackend,
			"size":           st.IndexSize,
			"build_ms":       float64(st.IndexBuildNanos) / 1e6,
			"recommends":     st.Recommends,
			"retrieved":      st.Retrieved,
			"recall_samples": st.RecallSamples,
		}
		if st.Recommends > 0 {
			idx["avg_recommend_ms"] = float64(st.RecommendNanos) / float64(st.Recommends) / 1e6
			idx["avg_retrieve_ms"] = float64(st.RetrieveNanos) / float64(st.Recommends) / 1e6
		}
		if st.RecallWanted > 0 {
			idx["observed_recall"] = float64(st.RecallHits) / float64(st.RecallWanted)
		}
		resp["index"] = idx
	}
	writeJSON(w, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	role := "primary"
	if s.replica != nil {
		role = "follower"
	}
	writeJSON(w, map[string]any{
		"status":   "ok",
		"dataset":  s.ds.Name,
		"task":     s.ds.Task.String(),
		"users":    s.ds.NumUsers,
		"objects":  s.ds.NumObjects,
		"uptime_s": time.Since(s.start).Seconds(),
		"online":   s.learner != nil,
		"role":     role,
		"durable":  s.walLog != nil,
		"engine": map[string]any{
			"generation":     st.Generation,
			"swaps":          st.Swaps,
			"instances":      st.Instances,
			"flushes":        st.Flushes,
			"static_hits":    st.StaticHits,
			"static_misses":  st.StaticMisses,
			"dyn_hits":       st.DynHits,
			"dyn_misses":     st.DynMisses,
			"static_entries": st.StaticEntries,
			"dyn_entries":    st.DynEntries,
		},
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
