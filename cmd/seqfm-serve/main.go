// Command seqfm-serve exposes a trained SeqFM model as a low-latency HTTP
// scoring service backed by the batched inference engine: JSON endpoints
// for raw scoring and top-K candidate ranking over a user's interaction
// history — the deployment shape of a sequence-aware recommender.
//
// On startup it materialises a stand-in dataset, then either loads a
// checkpoint written by -save (or core.Model.Save) or trains in-process,
// and serves:
//
//	GET  /healthz  — liveness plus engine statistics
//	POST /v1/score — {"instances":[{"user":u,"target":o,"hist":[...]}]}
//	                 → {"scores":[...]}
//	POST /v1/topk  — {"user":u,"hist":[...],"candidates":[...],"k":10}
//	                 → {"items":[{"object":o,"score":s}, ...]}
//
// In /v1/topk, "hist" defaults to the user's full interaction log from the
// dataset and "candidates" defaults to every object; item attributes are
// filled from the dataset's side-information tables automatically.
//
// Usage:
//
//	seqfm-serve -dataset gowalla -scale tiny -addr :8080
//	seqfm-serve -dataset beauty -scale small -epochs 8 -save beauty.ckpt
//	seqfm-serve -dataset beauty -scale small -checkpoint beauty.ckpt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"seqfm/internal/core"
	"seqfm/internal/data"
	"seqfm/internal/experiments"
	"seqfm/internal/feature"
	"seqfm/internal/serve"
	"seqfm/internal/train"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		dataset     = flag.String("dataset", "gowalla", "gowalla|foursquare|trivago|taobao|beauty|toys")
		scale       = flag.String("scale", "tiny", "tiny|small|medium|full")
		epochs      = flag.Int("epochs", 0, "override training epochs (0 = scale default)")
		seed        = flag.Int64("seed", 7, "master seed")
		checkpoint  = flag.String("checkpoint", "", "load model weights from this file instead of training")
		save        = flag.String("save", "", "write trained model weights to this file")
		workers     = flag.Int("workers", 0, "engine scoring goroutines (0 = GOMAXPROCS)")
		batchSize   = flag.Int("batch-size", 0, "micro-batch flush threshold for single-score requests (0 = default, 1 = off)")
		maxDelay    = flag.Duration("max-delay", 0, "micro-batch flush deadline (0 = default)")
		staticCache = flag.Int("static-cache", 0, "static-view cache entries (0 = default, <0 = off)")
		dynCache    = flag.Int("dyn-cache", 0, "dynamic-state cache entries (0 = default, <0 = off)")
	)
	flag.Parse()

	if err := run(*addr, *dataset, *scale, *epochs, *seed, *checkpoint, *save, serve.Config{
		Workers:         *workers,
		BatchSize:       *batchSize,
		MaxDelay:        *maxDelay,
		StaticCacheSize: *staticCache,
		DynCacheSize:    *dynCache,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "seqfm-serve:", err)
		os.Exit(1)
	}
}

func run(addr, dataset, scale string, epochs int, seed int64, checkpoint, save string, ecfg serve.Config) error {
	p := experiments.ParamsFor(experiments.Scale(scale))
	p.Seed = seed
	if epochs > 0 {
		p.Epochs = epochs
	}
	ds, err := buildDataset(p, dataset)
	if err != nil {
		return err
	}
	model, err := p.SeqFM(ds.Space(), core.Ablation{})
	if err != nil {
		return err
	}

	if checkpoint != "" {
		f, err := os.Open(checkpoint)
		if err != nil {
			return err
		}
		err = model.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load %s: %w", checkpoint, err)
		}
		log.Printf("loaded checkpoint %s", checkpoint)
	} else {
		split := data.NewSplit(ds)
		cfg := p.TrainConfig()
		if ds.Task == data.Regression {
			cfg = p.RegressionTrainConfig()
		}
		cfg.Logf = log.Printf
		log.Printf("training seqfm on %s (%d train instances)", ds.Name, len(split.Train))
		hist, err := trainFor(model, split, cfg, ds.Task)
		if err != nil {
			return err
		}
		log.Printf("trained in %.1fs (final loss %.4f)", hist.Total.Seconds(), hist.FinalLoss())
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		err = model.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("save %s: %w", save, err)
		}
		log.Printf("saved checkpoint %s", save)
	}

	eng := serve.NewEngine(model, ecfg)
	defer eng.Close()
	srv := newServer(eng, ds)
	log.Printf("serving %s (%d users, %d objects) on %s", ds.Name, ds.NumUsers, ds.NumObjects, addr)
	return http.ListenAndServe(addr, srv.routes())
}

func trainFor(m train.Model, split *data.Split, cfg train.Config, task data.Task) (*train.History, error) {
	switch task {
	case data.Ranking:
		return train.Ranking(m, split, cfg)
	case data.Classification:
		return train.Classification(m, split, cfg)
	default:
		return train.Regression(m, split, cfg)
	}
}

func buildDataset(p experiments.Params, name string) (*data.Dataset, error) {
	switch name {
	case "gowalla":
		g, _, err := p.RankingDatasets()
		return g, err
	case "foursquare":
		_, f, err := p.RankingDatasets()
		return f, err
	case "trivago":
		tv, _, err := p.CTRDatasets()
		return tv, err
	case "taobao":
		_, tb, err := p.CTRDatasets()
		return tb, err
	case "beauty":
		be, _, err := p.RatingDatasets()
		return be, err
	case "toys":
		_, to, err := p.RatingDatasets()
		return to, err
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// server holds the request handlers' shared state.
type server struct {
	eng   *serve.Engine
	ds    *data.Dataset
	start time.Time
}

func newServer(eng *serve.Engine, ds *data.Dataset) *server {
	return &server{eng: eng, ds: ds, start: time.Now()}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/score", s.handleScore)
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	return mux
}

// jsonInstance is the wire form of feature.Instance. Attr fields are
// pointers so "absent" is distinguishable from attribute 0; absent attrs
// fall back to the dataset's side-information tables.
type jsonInstance struct {
	User       int   `json:"user"`
	Target     int   `json:"target"`
	Hist       []int `json:"hist"`
	UserAttr   *int  `json:"user_attr,omitempty"`
	TargetAttr *int  `json:"target_attr,omitempty"`
}

func (s *server) toInstance(j jsonInstance) (feature.Instance, error) {
	if j.User < 0 || j.User >= s.ds.NumUsers {
		return feature.Instance{}, fmt.Errorf("user %d outside [0,%d)", j.User, s.ds.NumUsers)
	}
	if j.Target < 0 || j.Target >= s.ds.NumObjects {
		return feature.Instance{}, fmt.Errorf("target %d outside [0,%d)", j.Target, s.ds.NumObjects)
	}
	for _, h := range j.Hist {
		if h < 0 || h >= s.ds.NumObjects {
			return feature.Instance{}, fmt.Errorf("hist object %d outside [0,%d)", h, s.ds.NumObjects)
		}
	}
	inst := feature.Instance{
		User: j.User, Target: j.Target, Hist: j.Hist,
		UserAttr: feature.Pad, TargetAttr: feature.Pad,
	}
	if s.ds.NumUserAttrs > 0 {
		inst.UserAttr = s.ds.UserAttr[j.User]
	}
	if j.UserAttr != nil {
		if *j.UserAttr < 0 || *j.UserAttr >= s.ds.NumUserAttrs {
			return feature.Instance{}, fmt.Errorf("user_attr %d outside [0,%d)", *j.UserAttr, s.ds.NumUserAttrs)
		}
		inst.UserAttr = *j.UserAttr
	}
	if s.ds.NumItemAttrs > 0 {
		inst.TargetAttr = s.ds.ItemAttr[j.Target]
	}
	if j.TargetAttr != nil {
		if *j.TargetAttr < 0 || *j.TargetAttr >= s.ds.NumItemAttrs {
			return feature.Instance{}, fmt.Errorf("target_attr %d outside [0,%d)", *j.TargetAttr, s.ds.NumItemAttrs)
		}
		inst.TargetAttr = *j.TargetAttr
	}
	return inst, nil
}

func (s *server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Instances []jsonInstance `json:"instances"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	insts := make([]feature.Instance, len(req.Instances))
	for i, j := range req.Instances {
		inst, err := s.toInstance(j)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("instance %d: %w", i, err))
			return
		}
		insts[i] = inst
	}
	started := time.Now()
	scores := s.eng.ScoreBatch(insts)
	writeJSON(w, map[string]any{
		"scores":     scores,
		"elapsed_ms": float64(time.Since(started).Microseconds()) / 1000,
	})
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User       int   `json:"user"`
		Hist       []int `json:"hist"`
		Candidates []int `json:"candidates"`
		K          int   `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.User < 0 || req.User >= s.ds.NumUsers {
		httpError(w, http.StatusBadRequest, fmt.Errorf("user %d outside [0,%d)", req.User, s.ds.NumUsers))
		return
	}
	hist := req.Hist
	if hist == nil {
		for _, it := range s.ds.Users[req.User] {
			hist = append(hist, it.Object)
		}
	}
	for _, h := range hist {
		if h < 0 || h >= s.ds.NumObjects {
			httpError(w, http.StatusBadRequest, fmt.Errorf("hist object %d outside [0,%d)", h, s.ds.NumObjects))
			return
		}
	}
	candidates := req.Candidates
	if candidates == nil {
		candidates = make([]int, s.ds.NumObjects)
		for i := range candidates {
			candidates[i] = i
		}
	}
	for _, c := range candidates {
		if c < 0 || c >= s.ds.NumObjects {
			httpError(w, http.StatusBadRequest, fmt.Errorf("candidate %d outside [0,%d)", c, s.ds.NumObjects))
			return
		}
	}
	base := feature.Instance{User: req.User, Hist: hist, UserAttr: feature.Pad, TargetAttr: feature.Pad}
	if s.ds.NumUserAttrs > 0 {
		base.UserAttr = s.ds.UserAttr[req.User]
	}
	tkr := serve.TopKRequest{Base: base, Candidates: candidates, K: req.K}
	if s.ds.NumItemAttrs > 0 {
		tkr.AttrOf = func(o int) int { return s.ds.ItemAttr[o] }
	}
	started := time.Now()
	items := s.eng.TopK(tkr)
	type jsonItem struct {
		Object int     `json:"object"`
		Score  float64 `json:"score"`
	}
	out := make([]jsonItem, len(items))
	for i, it := range items {
		out[i] = jsonItem{Object: it.Object, Score: it.Score}
	}
	writeJSON(w, map[string]any{
		"items":      out,
		"elapsed_ms": float64(time.Since(started).Microseconds()) / 1000,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, map[string]any{
		"status":   "ok",
		"dataset":  s.ds.Name,
		"task":     s.ds.Task.String(),
		"users":    s.ds.NumUsers,
		"objects":  s.ds.NumObjects,
		"uptime_s": time.Since(s.start).Seconds(),
		"engine": map[string]any{
			"instances":      st.Instances,
			"flushes":        st.Flushes,
			"static_hits":    st.StaticHits,
			"static_misses":  st.StaticMisses,
			"dyn_hits":       st.DynHits,
			"dyn_misses":     st.DynMisses,
			"static_entries": st.StaticEntries,
			"dyn_entries":    st.DynEntries,
		},
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
