// Command seqfm-serve exposes a SeqFM model as a low-latency HTTP scoring
// service backed by the batched inference engine — and, with -online, as a
// live system: interaction feedback streams in over HTTP, a background
// trainer fine-tunes a shadow model, and fresh weights are hot-swapped into
// the serving path with zero downtime.
//
// On startup it materialises a stand-in dataset, then either loads a
// checkpoint or trains in-process, and serves (handlers in internal/httpapi):
//
//	GET  /healthz         — liveness plus engine statistics
//	POST /v1/score        — {"instances":[{"user":u,"target":o,"hist":[...]}]}
//	                        → {"scores":[...]}
//	POST /v1/topk         — {"user":u,"hist":[...],"candidates":[...],"k":10}
//	                        → {"items":[{"object":o,"score":s}, ...]}
//	POST /v1/recommend    — {"user":u,"hist":[...],"k":10,"n":500}
//	                        → {"items":[...],"generation":g,"retrieved":n}
//	                        (requires -index: full-catalog ANN retrieval +
//	                        exact re-rank; already-seen objects are excluded
//	                        unless "include_seen":true)
//	POST /v1/feedback     — {"user":u,"object":o,"label":1} or {"events":[...]}
//	                        → {"accepted":n,"pending":p}   (requires -online)
//	GET  /v1/model        — serving generation, config, online-trainer and
//	                        retrieval-index counters
//	GET  /v1/experiments  — per-arm online metrics (requires -experiment)
//
// In /v1/topk and /v1/recommend, "hist" defaults to the user's live history
// (dataset log plus every ingested event); /v1/topk's "candidates" defaults
// to every object; item attributes are filled from the dataset's
// side-information tables.
//
// With -index, the catalog index is warm-built at boot (before the listener
// opens) and rebuilt inside every hot swap, so /v1/recommend never serves
// one generation's embeddings against another's weights.
//
// Experimentation: -experiment <baseline> registers a second model from the
// baseline zoo (FM, SASRec, DIN, ...) alongside SeqFM in the same process.
// Requests route to an arm by a sticky hash of the user id; each arm
// accumulates its own latency percentiles, online HR@K (sampled probes
// against the live stream) and swap lag, reported at /v1/experiments.
//
// Admission control: -max-concurrent bounds in-flight requests per endpoint
// class (reads and feedback separately), with a bounded wait queue
// (-admit-queue, -admit-wait). Overload is explicit: a full queue sheds with
// 429, a wait timeout with 503, both carrying Retry-After. Independently,
// /v1/feedback surfaces a full training backlog as 503 + Retry-After rather
// than silently evicting untrained events.
//
// Checkpoints: -save writes the self-describing ckpt v2 format (config +
// weights), which -checkpoint loads with no matching flags needed. Legacy v1
// checkpoints (weights only) require -config-from-flags, acknowledging that
// the model shape comes from -dataset/-scale rather than the file. With
// -online and -snapshot, the fine-tuned model (with optimizer state) is
// written atomically every -snapshot-every, and a v2 -checkpoint warm-starts
// the online trainer from the embedded optimizer state.
//
// Durability and replication: with -online -wal DIR, every ingested event is
// appended to a segmented write-ahead log before it is enqueued (group-commit
// fsync by default; see -wal-sync), and snapshots record their log position.
// On boot the server recovers: torn log tails are truncated, the latest
// -snapshot file (when present) is restored, and the log suffix is replayed
// through the normal ingest path — bit-identical to never having crashed.
// The same log feeds follower replication: GET /v1/replica/snapshot and
// /v1/replica/log, and a replica started with -follow <primary-url>
// bootstraps from the primary's snapshot, tails its log, and serves
// /v1/score, /v1/topk and /v1/recommend read traffic under the primary's
// generation numbering (/v1/feedback is 409 on a follower — replicas are
// read-only). The follower must be started with the same -dataset/-scale/
// -seed/-workers as its primary: replication is deterministic replay, so the
// replica's trainer must derive the same random streams.
//
// Cluster: -wal-compact periodically writes a self-contained state
// checkpoint (-state-snapshot) and discards the WAL segments it covers, so
// the log stays bounded while recovery and follower bootstrap remain exact.
// A follower started with -promote-wal arms POST /v1/replica/promote: on
// promotion it stops tailing, opens a fresh WAL at its applied position + 1
// under a bumped writer epoch, and starts accepting feedback; the deposed
// primary's writes are fenced by epoch comparison everywhere they could
// land. -route turns the process into a stateless consistent-hash proxy
// tier over a -shard-map JSON file: feedback goes to the owning shard's
// primary, reads spread across its followers with primary fallback, and a
// 409 fence triggers one map reload + retry.
//
// Engines and observability: -engine forces the scoring engine — "compiled"
// (the preallocated plan engine, the default for SeqFM) or "tape" (the
// autodiff reference path); with -online it selects the fine-tuning engine
// too, so a follower must be started with its primary's -engine. /v1/model
// reports which engine the serving generation runs on. GET /metrics serves
// Prometheus text exposition and GET /v1/debug/slow the slow-request
// exemplar ring. -pprof ADDR exposes net/http/pprof on a side listener kept
// off the serving mux (and off its admission control), so profiles stay
// available under load; /metrics is mirrored onto that listener too.
//
// Shutdown is graceful: SIGINT/SIGTERM drains HTTP (http.Server.Shutdown),
// runs a final fine-tune sync, writes a final -snapshot, and flushes the WAL
// before exit.
//
// Usage:
//
//	seqfm-serve -dataset gowalla -scale tiny -addr :8080
//	seqfm-serve -dataset beauty -scale small -epochs 8 -save beauty.ckpt
//	seqfm-serve -dataset beauty -scale small -checkpoint beauty.ckpt
//	seqfm-serve -dataset gowalla -online -snapshot live.ckpt -snapshot-every 30s
//	seqfm-serve -dataset gowalla -online -wal ./wal -snapshot live.ckpt
//	seqfm-serve -dataset gowalla -follow http://primary:8080 -addr :8081
//	seqfm-serve -dataset gowalla -online -wal ./wal -state-snapshot state.ckpt -wal-compact 1m
//	seqfm-serve -dataset gowalla -follow http://primary:8080 -promote-wal ./wal2 -addr :8081
//	seqfm-serve -route -shard-map shards.json -addr :8000
//	seqfm-serve -dataset gowalla -online -experiment FM -max-concurrent 64
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on the -pprof side listener's mux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"seqfm/internal/ckpt"
	"seqfm/internal/cluster"
	"seqfm/internal/core"
	"seqfm/internal/data"
	"seqfm/internal/experiments"
	"seqfm/internal/httpapi"
	"seqfm/internal/index"
	"seqfm/internal/obs"
	"seqfm/internal/online"
	"seqfm/internal/serve"
	"seqfm/internal/train"
	"seqfm/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		dataset     = flag.String("dataset", "gowalla", "gowalla|foursquare|trivago|taobao|beauty|toys")
		scale       = flag.String("scale", "tiny", "tiny|small|medium|full")
		epochs      = flag.Int("epochs", 0, "override training epochs (0 = scale default)")
		seed        = flag.Int64("seed", 7, "master seed")
		checkpoint  = flag.String("checkpoint", "", "load model from this file instead of training (ckpt v2, or v1 with -config-from-flags)")
		cfgFlags    = flag.Bool("config-from-flags", false, "allow loading a legacy v1 checkpoint, taking the model config from -dataset/-scale")
		save        = flag.String("save", "", "write the trained model to this file (ckpt v2)")
		workers     = flag.Int("workers", 0, "engine scoring goroutines (0 = GOMAXPROCS)")
		batchSize   = flag.Int("batch-size", 0, "micro-batch flush threshold for single-score requests (0 = default, 1 = off)")
		maxDelay    = flag.Duration("max-delay", 0, "micro-batch flush deadline (0 = default)")
		staticCache = flag.Int("static-cache", 0, "static-view cache entries (0 = default, <0 = off)")
		dynCache    = flag.Int("dyn-cache", 0, "dynamic-state cache entries (0 = default, <0 = off)")
		engineSel   = flag.String("engine", "", "scoring/fine-tuning engine: compiled (plan; serving default) | tape (autodiff reference)")
		pprofAddr   = flag.String("pprof", "", "expose net/http/pprof on this side listener address, e.g. localhost:6060 (empty = off)")

		indexOn      = flag.Bool("index", false, "build the full-catalog retrieval index (/v1/recommend)")
		indexBackend = flag.String("index-backend", "hnsw", "retrieval backend: hnsw|flat")
		indexM       = flag.Int("index-m", 0, "HNSW links per node per layer (0 = default)")
		indexEfCons  = flag.Int("index-ef-construction", 0, "HNSW build beam width (0 = default)")
		indexEfSrch  = flag.Int("index-ef-search", 0, "HNSW query beam width (0 = default)")
		indexWorkers = flag.Int("index-build-workers", -1, "index build goroutines for the boot warm-build and every hot-swap rebuild (-1 = GOMAXPROCS, 1 = sequential/deterministic)")
		recallSample = flag.Int("recall-sample", 0, "with -index: every Nth recommend also flat-scans and records observed recall (0 = off)")

		onlineOn     = flag.Bool("online", false, "enable the online-learning subsystem (/v1/feedback, background fine-tune, hot swap)")
		onlineEvery  = flag.Duration("online-interval", 0, "online trainer cadence (0 = default)")
		onlineBatch  = flag.Int("online-batch", 0, "online fine-tune minibatch size (0 = default)")
		onlineLR     = flag.Float64("online-lr", 0, "online fine-tune learning rate (0 = checkpoint's saved rate on warm start, else 1e-3)")
		snapshotPath = flag.String("snapshot", "", "with -online: periodically write the fine-tuned model (ckpt v2) to this path; reloaded on boot for WAL recovery")
		snapshotEvry = flag.Duration("snapshot-every", time.Minute, "snapshot cadence")

		walDir      = flag.String("wal", "", "with -online: durable write-ahead log directory (event durability, replay recovery, replication source)")
		walSync     = flag.String("wal-sync", "group", "WAL fsync policy: group (batched group commit) | each (fsync per event) | none (page cache only)")
		walFlushInt = flag.Duration("wal-flush-interval", 0, "WAL OS-flush cadence under -wal-sync none (0 = default 2ms; group commit pipelines eagerly)")
		walFlushB   = flag.Int("wal-flush-bytes", 0, "WAL inline-flush byte threshold bounding buffer growth (0 = default 256KiB)")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size (0 = default 64MiB)")

		follow          = flag.String("follow", "", "follower mode: primary base URL to bootstrap from and tail (read replica)")
		followWait      = flag.Duration("follow-wait", 0, "follower long-poll window per log fetch (0 = default 2s)")
		promoteWAL      = flag.String("promote-wal", "", "with -follow: arm POST /v1/replica/promote — on promotion the follower opens a fresh WAL in this (empty) directory under a bumped epoch")
		promoteSnapshot = flag.String("promote-snapshot", "", "with -promote-wal: where the post-promotion state checkpoint is written (default <promote-wal>/state.ckpt)")

		walCompact    = flag.Duration("wal-compact", 0, "with -wal and -state-snapshot: periodically write a self-contained state checkpoint and discard the WAL segments it covers (0 = off)")
		stateSnapshot = flag.String("state-snapshot", "", "with -wal: self-contained state checkpoint path — written by -wal-compact cycles and preferred at boot for compacted-log recovery")

		route    = flag.Bool("route", false, "router mode: serve a stateless consistent-hash proxy tier over -shard-map instead of a model")
		shardMap = flag.String("shard-map", "", "with -route: JSON shard map file ({\"shards\":[{\"name\":...,\"primary\":...,\"followers\":[...]}]})")

		experiment  = flag.String("experiment", "", "register a baseline zoo member (FM, NFM, AFM, Wide&Deep, DeepCross, SASRec, TFM, DIN, xDeepFM, RRN, HOFM) as a second experiment arm")
		expWeight   = flag.Int("experiment-weight", 1, "baseline arm's traffic weight (seqfm arm has weight 1)")
		expSalt     = flag.Uint64("experiment-salt", 0, "sticky user→arm hash salt (change it to re-randomise the assignment)")
		expHRSample = flag.Int("experiment-hr-sample", 0, "probe online HR@K on every Nth feedback event per arm (0 = default, <0 = off)")

		slowThresh = flag.Duration("slow-threshold", 0, "latency above which a request lands in the /v1/debug/slow exemplar ring (0 = default, <0 = keep every request)")
		alertRules = flag.String("alert-rules", "", "JSON file of declarative alert rules ([{name,metric,labels,op,threshold,sustain_ms,severity},...]); firing critical rules degrade /healthz to 503, reported at /v1/debug/alerts")

		maxConc    = flag.Int("max-concurrent", 0, "admission control: in-flight request bound per endpoint class (0 = off)")
		admitQueue = flag.Int("admit-queue", 0, "admission wait-queue depth beyond -max-concurrent (0 = default, <0 = no queue)")
		admitWait  = flag.Duration("admit-wait", 0, "longest a request may wait for admission before a 503 (0 = default)")

		drainBudget = flag.Duration("shutdown-timeout", 15*time.Second, "graceful HTTP drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	// Tuning flags whose primary flag is absent would be silently dropped
	// (the server would boot without the subsystem and 409 the traffic);
	// fail fast instead, like -recall-sample and -snapshot do.
	requireFlag := func(primary string, on bool, names ...string) {
		if on {
			return
		}
		var stray []string
		flag.Visit(func(f *flag.Flag) {
			for _, n := range names {
				if f.Name == n {
					stray = append(stray, "-"+n)
				}
			}
		})
		if len(stray) > 0 {
			fmt.Fprintf(os.Stderr, "seqfm-serve: %s requires %s\n", strings.Join(stray, ", "), primary)
			os.Exit(1)
		}
	}
	requireFlag("-index", *indexOn, "index-backend", "index-m", "index-ef-construction", "index-ef-search", "index-build-workers")
	requireFlag("-wal", *walDir != "", "wal-sync", "wal-flush-interval", "wal-flush-bytes", "wal-segment-bytes", "wal-compact", "state-snapshot")
	requireFlag("-follow", *follow != "", "follow-wait", "promote-wal")
	requireFlag("-promote-wal", *promoteWAL != "", "promote-snapshot")
	requireFlag("-route", *route, "shard-map")
	if *route {
		if *shardMap == "" {
			fmt.Fprintln(os.Stderr, "seqfm-serve: -route requires -shard-map")
			os.Exit(1)
		}
		if *onlineOn || *follow != "" || *indexOn || *checkpoint != "" || *experiment != "" {
			fmt.Fprintln(os.Stderr, "seqfm-serve: -route is a stateless proxy tier; model, online, follower and experiment flags conflict with it")
			os.Exit(1)
		}
	}
	if *walCompact > 0 && *stateSnapshot == "" {
		fmt.Fprintln(os.Stderr, "seqfm-serve: -wal-compact needs -state-snapshot (the checkpoint that makes discarding log segments safe)")
		os.Exit(1)
	}
	requireFlag("-experiment", *experiment != "", "experiment-weight", "experiment-salt", "experiment-hr-sample")
	requireFlag("-max-concurrent", *maxConc > 0, "admit-queue", "admit-wait")
	switch *engineSel {
	case "", serve.EngineTape, serve.EngineCompiled:
	default:
		fmt.Fprintf(os.Stderr, "seqfm-serve: unknown -engine %q (want tape or compiled)\n", *engineSel)
		os.Exit(1)
	}
	if *follow != "" {
		// A follower is a read replica driven entirely by its primary's log:
		// local training, durability and checkpointing flags contradict it.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "online", "online-interval", "online-batch", "online-lr", "snapshot", "snapshot-every", "wal", "checkpoint", "save", "epochs", "experiment":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			fmt.Fprintf(os.Stderr, "seqfm-serve: %s conflicts with -follow (a follower replicates its primary)\n", strings.Join(conflict, ", "))
			os.Exit(1)
		}
	}

	opts := serveOpts{
		addr: *addr, dataset: *dataset, scale: *scale, epochs: *epochs, seed: *seed,
		checkpoint: *checkpoint, configFromFlags: *cfgFlags, save: *save,
		engine: serve.Config{
			Workers:         *workers,
			BatchSize:       *batchSize,
			MaxDelay:        *maxDelay,
			StaticCacheSize: *staticCache,
			DynCacheSize:    *dynCache,
			Engine:          *engineSel,
		},
		trainEngine: *engineSel,
		pprof:       *pprofAddr,
		index:       *indexOn, indexBackend: *indexBackend, indexM: *indexM,
		indexEfConstruction: *indexEfCons, indexEfSearch: *indexEfSrch,
		indexBuildWorkers: *indexWorkers, recallSample: *recallSample,
		online: *onlineOn, onlineInterval: *onlineEvery, onlineBatch: *onlineBatch,
		onlineLR: *onlineLR, snapshotPath: *snapshotPath, snapshotEvery: *snapshotEvry,
		walDir: *walDir, walSync: *walSync, walFlushInterval: *walFlushInt,
		walFlushBytes: *walFlushB, walSegmentBytes: *walSegBytes,
		walCompact: *walCompact, stateSnapshot: *stateSnapshot,
		follow: *follow, followWait: *followWait,
		promoteWAL: *promoteWAL, promoteSnapshot: *promoteSnapshot,
		route: *route, shardMap: *shardMap,
		experiment: *experiment, experimentWeight: *expWeight,
		experimentSalt: *expSalt, experimentHRSample: *expHRSample,
		maxConcurrent: *maxConc, admitQueue: *admitQueue, admitWait: *admitWait,
		slowThreshold: *slowThresh, alertRulesPath: *alertRules,
		drainBudget: *drainBudget,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "seqfm-serve:", err)
		os.Exit(1)
	}
}

type serveOpts struct {
	addr, dataset, scale string
	epochs               int
	seed                 int64
	checkpoint, save     string
	configFromFlags      bool
	engine               serve.Config
	index                bool
	indexBackend         string
	indexM               int
	indexEfConstruction  int
	indexEfSearch        int
	indexBuildWorkers    int
	recallSample         int
	online               bool
	onlineInterval       time.Duration
	onlineBatch          int
	onlineLR             float64
	snapshotPath         string
	snapshotEvery        time.Duration

	walDir           string
	walSync          string
	walFlushInterval time.Duration
	walFlushBytes    int
	walSegmentBytes  int64
	walCompact       time.Duration
	stateSnapshot    string

	follow          string
	followWait      time.Duration
	promoteWAL      string
	promoteSnapshot string

	route    bool
	shardMap string

	experiment         string
	experimentWeight   int
	experimentSalt     uint64
	experimentHRSample int

	maxConcurrent int
	admitQueue    int
	admitWait     time.Duration

	slowThreshold  time.Duration
	alertRulesPath string

	trainEngine string
	pprof       string
	drainBudget time.Duration
}

// alertRules loads -alert-rules, nil without the flag.
func (o serveOpts) alertRules() ([]obs.Rule, error) {
	if o.alertRulesPath == "" {
		return nil, nil
	}
	rules, err := obs.LoadRulesFile(o.alertRulesPath)
	if err != nil {
		return nil, fmt.Errorf("-alert-rules: %w", err)
	}
	log.Printf("alert rules: %d loaded from %s (evaluated on /healthz and /v1/debug/alerts reads)", len(rules), o.alertRulesPath)
	return rules, nil
}

// admission translates the flags into the two endpoint-class configs, nil
// when admission control is off.
func (o serveOpts) admission() (read, feedback *serve.AdmissionConfig) {
	if o.maxConcurrent <= 0 {
		return nil, nil
	}
	cfg := serve.AdmissionConfig{
		MaxConcurrent: o.maxConcurrent,
		MaxQueue:      o.admitQueue,
		MaxWait:       o.admitWait,
	}
	r, f := cfg, cfg
	return &r, &f
}

// buildExperiments registers the baseline arm next to the primary engine.
// The returned engine (the baseline's) must be closed by the caller.
func buildExperiments(o serveOpts, p experiments.Params, ds *data.Dataset, eng *serve.Engine) (*serve.Experiments, *serve.Engine, error) {
	bm, err := p.BaselineModel(ds.Space(), o.experiment)
	if err != nil {
		return nil, nil, err
	}
	// The baseline arm gets a plain engine: no retrieval index (the tier's
	// sampled fallback answers /v1/recommend) and no SeqFM fast-path caches,
	// but the same worker pool shape for a fair latency comparison.
	baseEng := serve.NewEngine(bm, serve.Config{Workers: o.engine.Workers})
	var attrOf func(int) int
	if ds.NumItemAttrs > 0 {
		attrOf = func(obj int) int { return ds.ItemAttr[obj] }
	}
	exp, err := serve.NewExperiments(
		[]serve.ExperimentArm{
			{Name: "seqfm", Engine: eng, Weight: 1},
			{Name: o.experiment, Engine: baseEng, Weight: o.experimentWeight},
		},
		serve.ExperimentsConfig{
			Salt:          o.experimentSalt,
			HRSampleEvery: o.experimentHRSample,
			NumObjects:    ds.NumObjects,
			AttrOf:        attrOf,
		},
	)
	if err != nil {
		baseEng.Close()
		return nil, nil, err
	}
	return exp, baseEng, nil
}

func run(o serveOpts) error {
	if o.route {
		return runRouter(o)
	}
	if o.follow != "" {
		return runFollower(o)
	}
	// Reject inconsistent flags before any expensive work (dataset build,
	// in-process training) is thrown away on them.
	if o.snapshotPath != "" && !o.online {
		return fmt.Errorf("-snapshot requires -online")
	}
	if o.walDir != "" && !o.online {
		return fmt.Errorf("-wal requires -online (the log records the online event stream)")
	}
	var backend index.Backend
	if o.index {
		var err error
		if backend, err = index.ParseBackend(o.indexBackend); err != nil {
			return err
		}
		if o.recallSample > 0 && backend == index.BackendFlat {
			return fmt.Errorf("-recall-sample is meaningless with -index-backend flat: the flat scan is exact (recall is identically 1)")
		}
	} else if o.recallSample > 0 {
		return fmt.Errorf("-recall-sample requires -index")
	}
	p := experiments.ParamsFor(experiments.Scale(o.scale))
	p.Seed = o.seed
	if o.epochs > 0 {
		p.Epochs = o.epochs
	}
	ds, err := buildDataset(p, o.dataset)
	if err != nil {
		return err
	}

	// Open (and recover) the WAL before deciding where the model comes
	// from: with durability on, the freshest state is the -snapshot file
	// plus the log suffix beyond it, and that pair wins over -checkpoint
	// and over re-training.
	var walLog *wal.Log
	if o.walDir != "" {
		policy, err := wal.ParsePolicy(o.walSync)
		if err != nil {
			return err
		}
		walLog, err = wal.Open(o.walDir, wal.Options{
			SegmentBytes:  o.walSegmentBytes,
			Policy:        policy,
			FlushInterval: o.walFlushInterval,
			FlushBytes:    o.walFlushBytes,
		})
		if err != nil {
			return err
		}
		defer walLog.Close()
		rec := walLog.Recovered()
		if walLog.Truncated() {
			log.Printf("WAL %s: torn tail truncated; recovered through seq %d (segment %d offset %d)",
				o.walDir, rec.Seq, rec.Segment, rec.Offset)
		} else {
			log.Printf("WAL %s: clean; %d records across %d segment(s)", o.walDir, rec.Seq, walLog.Segments())
		}
	}
	checkpointPath := o.checkpoint
	if walLog != nil && o.snapshotPath != "" {
		if _, statErr := os.Stat(o.snapshotPath); statErr == nil {
			checkpointPath = o.snapshotPath
			log.Printf("recovery: restoring snapshot %s (overrides -checkpoint/-epochs for the base weights)", o.snapshotPath)
		}
	}
	if walLog != nil && o.stateSnapshot != "" {
		// The state snapshot outranks the plain one: once -wal-compact has
		// discarded log segments, it is the only artifact that still covers
		// the compacted prefix.
		if _, statErr := os.Stat(o.stateSnapshot); statErr == nil {
			checkpointPath = o.stateSnapshot
			log.Printf("recovery: restoring state snapshot %s (self-contained through its cut; replay covers only the log suffix)", o.stateSnapshot)
		} else if walLog.FirstSeq() > 1 {
			return fmt.Errorf("WAL %s is compacted (first surviving seq %d) but -state-snapshot %s does not exist: the discarded prefix is unrecoverable without it",
				o.walDir, walLog.FirstSeq(), o.stateSnapshot)
		}
	}

	var model *core.Model
	var snapshot *ckpt.File // non-nil when the checkpoint was ckpt v2
	if checkpointPath != "" {
		model, snapshot, err = loadCheckpoint(checkpointPath, o.configFromFlags, p, ds)
		if err != nil {
			return err
		}
	} else {
		if model, err = p.SeqFM(ds.Space(), core.Ablation{}); err != nil {
			return err
		}
		split := data.NewSplit(ds)
		cfg := p.TrainConfig()
		if ds.Task == data.Regression {
			cfg = p.RegressionTrainConfig()
		}
		cfg.Logf = log.Printf
		log.Printf("training seqfm on %s (%d train instances)", ds.Name, len(split.Train))
		hist, err := trainFor(model, split, cfg, ds.Task)
		if err != nil {
			return err
		}
		log.Printf("trained in %.1fs (final loss %.4f)", hist.Total.Seconds(), hist.FinalLoss())
	}
	if o.save != "" {
		if err := ckpt.SaveFile(o.save, model, nil, 0); err != nil {
			return fmt.Errorf("save %s: %w", o.save, err)
		}
		log.Printf("saved checkpoint %s (ckpt v2)", o.save)
	}

	if o.index {
		o.engine.Index = &serve.IndexConfig{
			Objects: ds.Objects(),
			Backend: backend,
			ANN: index.Config{
				M:              o.indexM,
				EfConstruction: o.indexEfConstruction,
				EfSearch:       o.indexEfSearch,
				Seed:           o.seed,
				BuildWorkers:   o.indexBuildWorkers,
			},
			RecallSampleEvery: o.recallSample,
		}
	}
	// NewEngine warm-builds generation 1's catalog index before the
	// listener opens: the first /v1/recommend never pays the build.
	eng := serve.NewEngine(model, o.engine)
	defer eng.Close()
	if o.index {
		st := eng.Stats()
		log.Printf("catalog index warm-built: backend=%s items=%d build=%.1fms",
			st.IndexBackend, st.IndexSize, float64(st.IndexBuildNanos)/1e6)
	}

	var learner *online.Learner
	if o.online {
		ocfg := online.Config{
			Train: train.Config{
				Seed:      o.seed,
				LR:        o.onlineLR,
				Workers:   o.engine.Workers,
				Negatives: p.Negatives,
				Engine:    o.trainEngine,
			},
			BatchSize: o.onlineBatch,
			Interval:  o.onlineInterval,
			Log:       walLog,
		}
		if snapshot != nil {
			// Warm-start fine-tuning from the embedded optimizer state and
			// step counter of the already-decoded checkpoint.
			learner, err = online.NewLearnerFromSnapshot(model, snapshot, ds, eng, ocfg)
			if err != nil {
				return fmt.Errorf("warm-start from %s: %w", checkpointPath, err)
			}
			log.Printf("online trainer warm-started from %s", checkpointPath)
		} else {
			if learner, err = online.NewLearner(model, ds, eng, ocfg); err != nil {
				return err
			}
		}
		if walLog != nil {
			// Replay the log (the suffix beyond the snapshot re-trains; the
			// prefix rebuilds histories and sampling state) before the
			// trainer or the listener starts: recovery is single-threaded
			// by contract.
			start := time.Now()
			rst, err := learner.ReplayLog()
			if err != nil {
				return fmt.Errorf("wal replay: %w", err)
			}
			log.Printf("WAL replay: %d records (%d events, %d steps re-trained, %d covered by snapshot, %d drops) in %.1fms → generation %d",
				rst.Records, rst.Events, rst.Steps, rst.SkippedSteps, rst.Drops,
				float64(time.Since(start).Microseconds())/1000, eng.Generation())
		}
		learner.Start()
		defer learner.Close()
		lcfg := learner.Config() // resolved, not the raw flags
		log.Printf("online learning enabled (batch=%d, interval=%s, lr=%g, wal=%v)",
			lcfg.BatchSize, lcfg.Interval, learner.LR(), walLog != nil)
	}
	stopCompactor := func() {}
	if o.walCompact > 0 {
		if learner == nil || walLog == nil {
			return fmt.Errorf("-wal-compact requires -online and -wal")
		}
		stopCompactor = cluster.StartCompactor(learner, cluster.CompactionConfig{
			Path:     o.stateSnapshot,
			Interval: o.walCompact,
			Logf:     log.Printf,
		})
		log.Printf("WAL compactor: state checkpoint to %s every %s, covered segments discarded", o.stateSnapshot, o.walCompact)
	}

	var exp *serve.Experiments
	if o.experiment != "" {
		var baseEng *serve.Engine
		exp, baseEng, err = buildExperiments(o, p, ds, eng)
		if err != nil {
			return err
		}
		defer baseEng.Close()
		log.Printf("experiment: seqfm vs %s (weight 1:%d, salt %d) at /v1/experiments",
			o.experiment, o.experimentWeight, o.experimentSalt)
	}

	readAdm, feedbackAdm := o.admission()
	if readAdm != nil {
		log.Printf("admission control: max-concurrent=%d queue=%d wait=%s per endpoint class",
			o.maxConcurrent, o.admitQueue, o.admitWait)
	}
	rules, err := o.alertRules()
	if err != nil {
		return err
	}
	srv, err := httpapi.New(httpapi.Config{
		Engine: eng, Dataset: ds, Model: model,
		Learner: learner, WAL: walLog,
		Experiments:       exp,
		ReadAdmission:     readAdm,
		FeedbackAdmission: feedbackAdm,
		SlowThreshold:     o.slowThreshold,
		Rules:             rules,
	})
	if err != nil {
		return err
	}
	return serveUntilSignal(o, srv, ds, func(ctx context.Context) {
		if learner == nil {
			return
		}
		if o.snapshotPath != "" {
			go snapshotLoop(ctx, learner, o.snapshotPath, o.snapshotEvery)
		}
	}, func() {
		// Ordered teardown once HTTP has drained: stop the compactor, stop
		// the trainer and flush its backlog, persist the final state, then
		// seal the log.
		stopCompactor()
		if learner != nil {
			learner.Close()
			if o.snapshotPath != "" {
				if err := learner.CheckpointFile(o.snapshotPath); err != nil {
					log.Printf("final snapshot %s: %v", o.snapshotPath, err)
				} else {
					log.Printf("final snapshot written to %s", o.snapshotPath)
				}
			}
		}
		if walLog != nil {
			if err := walLog.Close(); err != nil {
				log.Printf("wal close: %v", err)
			}
		}
	})
}

// runFollower is -follow: bootstrap a read replica from a primary's snapshot
// endpoint, tail its log, and serve read traffic under the primary's
// generation numbering.
func runFollower(o serveOpts) error {
	var backend index.Backend
	if o.index {
		var err error
		if backend, err = index.ParseBackend(o.indexBackend); err != nil {
			return err
		}
	}
	p := experiments.ParamsFor(experiments.Scale(o.scale))
	p.Seed = o.seed
	ds, err := buildDataset(p, o.dataset)
	if err != nil {
		return err
	}
	log.Printf("follower: bootstrapping from %s", o.follow)
	model, file, bootGen, err := online.FetchSnapshot(o.follow, nil)
	if err != nil {
		return err
	}
	if model.Config().Space != ds.Space() {
		return fmt.Errorf("primary snapshot space %+v does not match local dataset %s space %+v (start the follower with the primary's -dataset/-scale)",
			model.Config().Space, ds.Name, ds.Space())
	}
	if o.index {
		o.engine.Index = &serve.IndexConfig{
			Objects: ds.Objects(),
			Backend: backend,
			ANN: index.Config{
				M:              o.indexM,
				EfConstruction: o.indexEfConstruction,
				EfSearch:       o.indexEfSearch,
				Seed:           o.seed,
				BuildWorkers:   o.indexBuildWorkers,
			},
			RecallSampleEvery: o.recallSample,
		}
	}
	eng := serve.NewEngine(model, o.engine)
	defer eng.Close()
	// The replica's stepper must derive the primary's random streams: same
	// seed, same worker count — replication is deterministic replay.
	learner, err := online.NewLearnerFromSnapshot(model, file, ds, eng, online.Config{
		Train: train.Config{
			Seed:      o.seed,
			Workers:   o.engine.Workers,
			Negatives: p.Negatives,
			Engine:    o.trainEngine,
		},
	})
	if err != nil {
		return err
	}
	rep := online.NewReplica(learner, &online.HTTPLogSource{Base: o.follow}, bootGen, online.ReplicaConfig{Wait: o.followWait, Logf: log.Printf})
	start := time.Now()
	applied, err := rep.CatchUp()
	if err != nil {
		return fmt.Errorf("initial catch-up: %w", err)
	}
	log.Printf("follower: caught up (%d records in %.1fms) at generation %d",
		applied, float64(time.Since(start).Microseconds())/1000, eng.Generation())
	rep.Start()

	readAdm, feedbackAdm := o.admission()
	rules, err := o.alertRules()
	if err != nil {
		return err
	}
	var promote func() (httpapi.PromoteInfo, error)
	if o.promoteWAL != "" {
		snapPath := o.promoteSnapshot
		if snapPath == "" {
			snapPath = filepath.Join(o.promoteWAL, "state.ckpt")
		}
		promote = func() (httpapi.PromoteInfo, error) {
			res, err := cluster.Promote(cluster.Promotion{
				Replica:      rep,
				Learner:      learner,
				WALDir:       o.promoteWAL,
				SnapshotPath: snapPath,
				Logf:         log.Printf,
			})
			if err != nil {
				return httpapi.PromoteInfo{}, err
			}
			return httpapi.PromoteInfo{
				Epoch:      uint64(res.Epoch),
				AppliedSeq: res.AppliedSeq,
				Generation: res.Generation,
				WALDir:     res.WALDir,
			}, nil
		}
		log.Printf("promotion armed: POST /v1/replica/promote opens a fresh WAL in %s (state checkpoint %s)", o.promoteWAL, snapPath)
	}
	srv, err := httpapi.New(httpapi.Config{
		Engine: eng, Dataset: ds, Model: model,
		Learner: learner, Replica: rep, Primary: o.follow,
		Promote:           promote,
		ReadAdmission:     readAdm,
		FeedbackAdmission: feedbackAdm,
		SlowThreshold:     o.slowThreshold,
		Rules:             rules,
	})
	if err != nil {
		return err
	}
	return serveUntilSignal(o, srv, ds, nil, func() {
		rep.Close() // no-op when a promotion already stopped the tail loop
		if wlog := learner.WAL(); wlog != nil {
			// Promoted mid-run: the learner now owns a trainer and a log of
			// its own; tear them down like a primary's.
			learner.Close()
			if err := wlog.Close(); err != nil {
				log.Printf("promoted wal close: %v", err)
			}
		}
	})
}

// serveUntilSignal runs the HTTP server until SIGINT/SIGTERM, then drains
// in-flight requests (bounded by -shutdown-timeout) and runs the ordered
// teardown. onServe, when non-nil, starts signal-scoped background loops.
func serveUntilSignal(o serveOpts, srv *httpapi.Server, ds *data.Dataset, onServe func(ctx context.Context), teardown func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if onServe != nil {
		onServe(ctx)
	}
	if o.pprof != "" {
		// Side listener on the default mux, where the blank net/http/pprof
		// import registers its handlers — separate from the serving mux so
		// profiling stays reachable when the API is saturated or shedding.
		// /metrics is mirrored here for the same reason: a scrape must not
		// compete with (or be shed by) serving-path admission control.
		http.Handle("GET /metrics", srv.MetricsHandler())
		go func() {
			log.Printf("pprof listening on %s", o.pprof)
			if err := http.ListenAndServe(o.pprof, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}
	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	role := "primary"
	if o.follow != "" {
		role = "follower of " + o.follow
	}
	log.Printf("serving %s (%d users, %d objects) on %s [%s]", ds.Name, ds.NumUsers, ds.NumObjects, o.addr, role)
	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C force-kills
	log.Printf("shutdown: draining HTTP (budget %s)", o.drainBudget)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainBudget)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("shutdown: drain incomplete: %v", err)
	}
	teardown()
	log.Printf("shutdown complete")
	return nil
}

// loadCheckpoint opens path and dispatches on the sniffed format: v2 files
// are self-describing (and must match the dataset's feature space) and
// return their decoded ckpt.File for optimizer warm-starts; legacy v1 files
// carry only weights, so the model is built from the flag-derived config —
// an implicit dependency the operator must acknowledge with
// -config-from-flags — and the returned file is nil.
func loadCheckpoint(path string, configFromFlags bool, p experiments.Params, ds *data.Dataset) (*core.Model, *ckpt.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	switch ckpt.DetectVersion(r) {
	case ckpt.V2:
		m, file, err := ckpt.Load(r)
		if err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", path, err)
		}
		if m.Config().Space != ds.Space() {
			return nil, nil, fmt.Errorf("load %s: checkpoint space %+v does not match dataset %s space %+v",
				path, m.Config().Space, ds.Name, ds.Space())
		}
		log.Printf("loaded checkpoint %s (ckpt v2: config embedded)", path)
		return m, file, nil
	case ckpt.V1:
		if !configFromFlags {
			return nil, nil, fmt.Errorf(
				"%s is a legacy v1 checkpoint with no embedded config; pass -config-from-flags to build the model from -dataset/-scale (and re-save it as v2 with -save)", path)
		}
		m, err := p.SeqFM(ds.Space(), core.Ablation{})
		if err != nil {
			return nil, nil, err
		}
		if err := m.Load(r); err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", path, err)
		}
		log.Printf("WARNING: loaded legacy v1 checkpoint %s with config from flags (-dataset %s -scale config); mismatched flags would have been rejected only by shape, not by intent — re-save as v2",
			path, ds.Name)
		return m, nil, nil
	default:
		return nil, nil, fmt.Errorf("%s is not a seqfm checkpoint", path)
	}
}

// snapshotLoop periodically writes the fine-tuned model to disk (atomically:
// temp file + rename), so a restart can warm-start from recent weights. It
// exits with the signal context; shutdown writes one final snapshot itself.
func snapshotLoop(ctx context.Context, l *online.Learner, path string, every time.Duration) {
	if every <= 0 {
		every = time.Minute
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if err := l.CheckpointFile(path); err != nil {
			log.Printf("snapshot %s: %v", path, err)
		} else {
			log.Printf("snapshot written to %s", path)
		}
	}
}

func trainFor(m train.Model, split *data.Split, cfg train.Config, task data.Task) (*train.History, error) {
	switch task {
	case data.Ranking:
		return train.Ranking(m, split, cfg)
	case data.Classification:
		return train.Classification(m, split, cfg)
	default:
		return train.Regression(m, split, cfg)
	}
}

func buildDataset(p experiments.Params, name string) (*data.Dataset, error) {
	switch name {
	case "gowalla":
		g, _, err := p.RankingDatasets()
		return g, err
	case "foursquare":
		_, f, err := p.RankingDatasets()
		return f, err
	case "trivago":
		tv, _, err := p.CTRDatasets()
		return tv, err
	case "taobao":
		_, tb, err := p.CTRDatasets()
		return tb, err
	case "beauty":
		be, _, err := p.RatingDatasets()
		return be, err
	case "toys":
		_, to, err := p.RatingDatasets()
		return to, err
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}
