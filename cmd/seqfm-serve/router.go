package main

import (
	"context"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"seqfm/internal/cluster"
)

// runRouter is -route: a stateless consistent-hash proxy tier over the
// -shard-map file. Feedback goes to the owning shard's primary (with epoch
// fencing and a retry-once after reloading the map); reads spread over the
// shard's followers with primary fallback. The router holds no model and no
// log — restart it freely, run several behind a TCP balancer.
func runRouter(o serveOpts) error {
	m, err := cluster.LoadShardMap(o.shardMap)
	if err != nil {
		return err
	}
	rt, err := cluster.NewRouter(m, cluster.RouterConfig{
		MapPath: o.shardMap,
		Logf:    log.Printf,
	})
	if err != nil {
		return err
	}
	for _, sh := range m.Shards {
		log.Printf("router: shard %s → primary %s (%d follower(s))", sh.Name, sh.Primary, len(sh.Followers))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: o.addr, Handler: rt.Routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("routing %d shard(s) on %s [router]", len(m.Shards), o.addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutdown: draining HTTP (budget %s)", o.drainBudget)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainBudget)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("shutdown: drain incomplete: %v", err)
	}
	log.Printf("shutdown complete")
	return nil
}
