package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"seqfm/internal/ckpt"
	"seqfm/internal/online"
	"seqfm/internal/serve"
	"seqfm/internal/wal"
)

// walAppendEntry is one measured (policy, concurrency) append configuration.
type walAppendEntry struct {
	Policy       string  `json:"policy"`
	Concurrency  int     `json:"concurrency"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   int64   `json:"ns_per_event"`
}

// walReplayEntry is one measured recovery-replay configuration.
type walReplayEntry struct {
	Mode         string  `json:"mode"` // "retrain" (no snapshot) or "skip" (snapshot covers every step)
	Records      int     `json:"records"`
	Events       int     `json:"events"`
	Steps        int     `json:"steps_retrained"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// walFollowerEntry is the follower catch-up measurement.
type walFollowerEntry struct {
	Records      int     `json:"records"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	CatchUpMs    float64 `json:"catch_up_ms"`
}

// walBenchReport is the BENCH_wal.json schema.
type walBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Workload    string `json:"workload"`
	// Append throughput per fsync policy; GroupCommitSpeedup is
	// group/each at the same concurrency — the acceptance bar is >= 10x.
	Appends            []walAppendEntry `json:"appends"`
	GroupCommitSpeedup float64          `json:"group_commit_speedup"`
	Replays            []walReplayEntry `json:"replays"`
	Follower           walFollowerEntry `json:"follower"`
}

// benchAppendThroughput times n event-record appends spread over conc
// goroutines under one sync policy — every append waits for durability per
// the policy, exactly as Ingest does.
func benchAppendThroughput(dir string, policy wal.SyncPolicy, conc, n int) (walAppendEntry, error) {
	log, err := wal.Open(dir, wal.Options{Policy: policy})
	if err != nil {
		return walAppendEntry{}, err
	}
	defer log.Close()
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	per := n / conc
	start := time.Now()
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := wal.Record{Type: wal.RecEvent, User: g, Object: i % online.BenchObjects, Label: 1, TS: 1}
				if _, err := log.Append(wal.EncodeRecord(rec)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return walAppendEntry{}, err
	}
	total := per * conc
	return walAppendEntry{
		Policy:       policy.String(),
		Concurrency:  conc,
		Events:       total,
		EventsPerSec: float64(total) / elapsed.Seconds(),
		NsPerEvent:   elapsed.Nanoseconds() / int64(total),
	}, nil
}

// buildBenchLog drives the shared WAL-bench stream (online.DriveBenchLog)
// into dir and returns the final checkpoint stream for skip-mode replay.
func buildBenchLog(dir string) ([]byte, error) {
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
	if err != nil {
		return nil, err
	}
	defer log.Close()
	return online.DriveBenchLog(log, online.BenchEventCount)
}

// benchReplay replays the built log into a fresh learner, with or without
// the snapshot (skip vs full-retrain replay).
func benchReplay(dir string, ckptBytes []byte) (walReplayEntry, error) {
	m, ds, err := online.BenchWorkload()
	if err != nil {
		return walReplayEntry{}, err
	}
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
	if err != nil {
		return walReplayEntry{}, err
	}
	defer log.Close()
	eng := serve.NewEngine(m.Clone(), serve.Config{Workers: 1})
	defer eng.Close()
	cfg := online.Config{
		Train:     online.BenchTrainConfig(),
		BatchSize: 64,
		Log:       log,
	}
	var l *online.Learner
	mode := "retrain"
	if ckptBytes != nil {
		mode = "skip"
		l, err = online.NewLearnerFromCheckpoint(bytes.NewReader(ckptBytes), ds, eng, cfg)
	} else {
		l, err = online.NewLearner(m, ds, eng, cfg)
	}
	if err != nil {
		return walReplayEntry{}, err
	}
	start := time.Now()
	st, err := l.ReplayLog()
	if err != nil {
		return walReplayEntry{}, err
	}
	elapsed := time.Since(start)
	return walReplayEntry{
		Mode:         mode,
		Records:      st.Records,
		Events:       st.Events,
		Steps:        st.Steps,
		EventsPerSec: float64(st.Events) / elapsed.Seconds(),
	}, nil
}

// walLogSource adapts a local wal.Log to the replica's LogSource — the
// in-process equivalent of tailing /v1/replica/log, isolating follower
// catch-up cost from HTTP.
type walLogSource struct{ log *wal.Log }

func (s walLogSource) FetchLog(from uint64, max int, wait time.Duration) (online.LogFetch, error) {
	rd, err := s.log.ReaderAt(from)
	if err != nil {
		return online.LogFetch{}, err
	}
	defer rd.Close()
	fetch := online.LogFetch{DurableSeq: s.log.DurableSeq(), NowMillis: time.Now().UnixMilli()}
	for len(fetch.Records) < max {
		rec, err := rd.NextRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return online.LogFetch{}, err
		}
		fetch.Records = append(fetch.Records, rec)
	}
	return fetch, nil
}

// benchFollower bootstraps a follower from the built checkpoint and measures
// how fast it catches up over the whole log.
func benchFollower(dir string, ckptBytes []byte) (walFollowerEntry, error) {
	_, ds, err := online.BenchWorkload()
	if err != nil {
		return walFollowerEntry{}, err
	}
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
	if err != nil {
		return walFollowerEntry{}, err
	}
	defer log.Close()
	m, f, err := ckpt.Load(bytes.NewReader(ckptBytes))
	if err != nil {
		return walFollowerEntry{}, err
	}
	eng := serve.NewEngine(m, serve.Config{Workers: 1})
	defer eng.Close()
	l, err := online.NewLearnerFromSnapshot(m, f, ds, eng, online.Config{
		Train:     online.BenchTrainConfig(),
		BatchSize: 64,
	})
	if err != nil {
		return walFollowerEntry{}, err
	}
	rep := online.NewReplica(l, walLogSource{log: log}, 1, online.ReplicaConfig{})
	start := time.Now()
	n, err := rep.CatchUp()
	if err != nil {
		return walFollowerEntry{}, err
	}
	elapsed := time.Since(start)
	st := rep.Stats()
	if !st.CaughtUp {
		return walFollowerEntry{}, fmt.Errorf("follower did not catch up: %+v", st)
	}
	events := int(l.Stats().Ingested)
	return walFollowerEntry{
		Records:      n,
		Events:       events,
		EventsPerSec: float64(events) / elapsed.Seconds(),
		CatchUpMs:    float64(elapsed.Microseconds()) / 1000,
	}, nil
}

// runWALBench is seqfm-bench -mode wal: ingest throughput per fsync policy
// (the group-commit economics), recovery-replay throughput in both modes,
// and follower catch-up — written to BENCH_wal.json.
func runWALBench(outPath string) error {
	tmp, err := os.MkdirTemp("", "seqfm-wal-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	report := walBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workload: fmt.Sprintf("space=%dx%d seqfm d=8 events=%d sync-every=%d; appends conc=256",
			online.BenchUsers, online.BenchObjects, online.BenchEventCount, online.BenchSyncEvery),
	}

	// Append throughput: per-event fsync is measured on a smaller count (it
	// is the slow baseline), group commit and no-fsync on the full stream.
	// Concurrency matches a heavily loaded ingest tier: group-commit
	// throughput scales with how many writers share each fsync cycle, so
	// this is the regime the policy exists for (a single synchronous writer
	// gains nothing — it pays one fsync either way).
	const conc = 256
	jobs := []struct {
		policy wal.SyncPolicy
		n      int
	}{
		{wal.SyncEach, 1024},
		{wal.SyncGroup, 32768},
		{wal.SyncNone, 32768},
	}
	// Best of three trials per policy: fsync latency on shared virtualized
	// disks is bimodal (journal and host I/O state), and the committed
	// numbers should reflect the policy's economics, not a noisy neighbor.
	const trials = 3
	var each, group float64
	for i, j := range jobs {
		var e walAppendEntry
		for t := 0; t < trials; t++ {
			r, err := benchAppendThroughput(filepath.Join(tmp, fmt.Sprintf("append-%d-%d", i, t)), j.policy, conc, j.n)
			if err != nil {
				return err
			}
			if t == 0 || r.EventsPerSec > e.EventsPerSec {
				e = r
			}
		}
		report.Appends = append(report.Appends, e)
		fmt.Printf("append policy=%-5s conc=%d  %12.0f events/s  (%d ns/event)\n",
			e.Policy, e.Concurrency, e.EventsPerSec, e.NsPerEvent)
		switch j.policy {
		case wal.SyncEach:
			each = e.EventsPerSec
		case wal.SyncGroup:
			group = e.EventsPerSec
		}
	}
	if each > 0 {
		report.GroupCommitSpeedup = group / each
		fmt.Printf("group-commit speedup over per-event fsync: %.1fx\n", report.GroupCommitSpeedup)
	}

	// Recovery replay: build one logged run, replay it twice.
	logDir := filepath.Join(tmp, "replay")
	ckptBytes, err := buildBenchLog(logDir)
	if err != nil {
		return err
	}
	for _, snap := range [][]byte{nil, ckptBytes} {
		e, err := benchReplay(logDir, snap)
		if err != nil {
			return err
		}
		report.Replays = append(report.Replays, e)
		fmt.Printf("replay mode=%-7s  %12.0f events/s  (%d records, %d steps retrained)\n",
			e.Mode, e.EventsPerSec, e.Records, e.Steps)
	}

	fe, err := benchFollower(logDir, ckptBytes)
	if err != nil {
		return err
	}
	report.Follower = fe
	fmt.Printf("follower catch-up: %d records in %.1fms  (%12.0f events/s)\n",
		fe.Records, fe.CatchUpMs, fe.EventsPerSec)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
