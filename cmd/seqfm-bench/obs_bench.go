package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"seqfm/internal/obs"
	"seqfm/internal/online"
	"seqfm/internal/serve"
)

// Obs-bench knobs: per-round request count and interleaved rounds. The
// base/instrumented pair is measured alternately and the best round of each
// is compared, so a background hiccup hits one round, not the ratio.
const (
	obsBenchRequests = 2000
	obsBenchRounds   = 3
)

// obsBenchReport is the BENCH_obs.json schema — the telemetry overhead
// guard. CI asserts P50Ratio <= 1.05 and RecordAllocsPerOp == 0.
type obsBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Workload    string `json:"workload"`

	// BaseP50Ns is the warm single-worker top-K p50 without telemetry;
	// InstrumentedP50Ns the same requests through the full per-request
	// instrumentation (trace creation, context plumbing, stage recording,
	// request counter, latency histogram). P50Ratio is their quotient.
	BaseP50Ns         int64   `json:"base_p50_ns"`
	InstrumentedP50Ns int64   `json:"instrumented_p50_ns"`
	P50Ratio          float64 `json:"p50_ratio"`

	// RecordNsPerOp and RecordAllocsPerOp measure the hot recording path
	// alone — one histogram Record plus one counter Add on pre-resolved
	// children, the operations every instrumented request pays per stage.
	RecordNsPerOp     int64   `json:"record_ns_per_op"`
	RecordAllocsPerOp float64 `json:"record_allocs_per_op"`

	// SketchRecordNsPerOp and SketchRecordAllocsPerOp price one
	// ScoreSketch.Record — what every returned top-K item pays for the
	// drift monitors. The allocation bar is 0, like the other hot paths.
	SketchRecordNsPerOp     int64   `json:"sketch_record_ns_per_op"`
	SketchRecordAllocsPerOp float64 `json:"sketch_record_allocs_per_op"`

	// FreshnessP50MS is the measured p50 ingest→servable lag of a learner
	// syncing every PublishIntervalMS while events stream in — the
	// end-to-end price of a publish cadence, read from the same
	// seqfm_freshness_seconds histogram the server exports. CI asserts
	// FreshnessP50MS < 2× PublishIntervalMS: the pipeline itself must not
	// add more staleness than the cadence already implies.
	FreshnessP50MS    float64 `json:"freshness_p50_ms"`
	PublishIntervalMS float64 `json:"publish_interval_ms"`
}

// Freshness-bench knobs: events per publish cycle, cycles, and the sync
// cadence the learner publishes on.
const (
	obsBenchFreshCycles     = 8
	obsBenchFreshPerCycle   = 50
	obsBenchPublishInterval = 20 * time.Millisecond
)

// measureFreshness streams events into an in-memory learner that syncs (and
// publishes) every obsBenchPublishInterval, then reads the p50 of the
// ingest→servable histogram — the exact series behind
// seqfm_freshness_seconds{stage="servable"}.
func measureFreshness() (p50ms float64, err error) {
	m, ds, err := online.BenchWorkload()
	if err != nil {
		return 0, err
	}
	eng := serve.NewEngine(m.Clone(), serve.Config{Workers: 1})
	defer eng.Close()
	l, err := online.NewLearner(m, ds, eng, online.Config{
		Train:     online.BenchTrainConfig(),
		BatchSize: obsBenchFreshPerCycle,
	})
	if err != nil {
		return 0, err
	}
	for c := 0; c < obsBenchFreshCycles; c++ {
		for j := 0; j < obsBenchFreshPerCycle; j++ {
			u := (c*obsBenchFreshPerCycle + j) % online.BenchUsers
			if err := l.Ingest(u, (u*7+j)%online.BenchObjects, 1); err != nil {
				return 0, err
			}
		}
		time.Sleep(obsBenchPublishInterval)
		l.Sync()
	}
	return l.ServableFreshness().Quantile(0.50).Seconds() * 1e3, nil
}

// runObsBench measures what the PR-8 telemetry costs the serving hot path:
// the warm single-worker top-K of serve.BenchWorkload (the same workload as
// -mode serve and BenchmarkServe*), bare versus through the full edge
// instrumentation a /v1/topk request pays. The acceptance bar is ≤5% on the
// p50 and zero allocations on the recording path itself.
func runObsBench(outPath string) error {
	m, inst, candidates, err := serve.BenchWorkload()
	if err != nil {
		return err
	}
	eng := serve.NewEngine(m, serve.Config{Workers: 1})
	defer eng.Close()
	req := serve.TopKRequest{Base: inst, Candidates: candidates, K: 10}
	for i := 0; i < 3; i++ { // warm caches
		_ = eng.TopK(req)
	}

	// The same instrument shapes httpapi wires: a stage vector the trace
	// records into, plus the edge latency histogram and request counter with
	// children resolved once at wiring time.
	reg := obs.NewRegistry()
	stageVec := reg.NewHistogramVec("seqfm_stage_seconds", "bench", "stage")
	latChild := reg.NewHistogramVec("seqfm_http_request_seconds", "bench", "endpoint").With("topk")
	reqChild := reg.NewCounterVec("seqfm_http_requests_total", "bench", "endpoint", "code").With("topk", "200")

	measureBase := func() []time.Duration {
		lat := make([]time.Duration, obsBenchRequests)
		for i := range lat {
			t0 := time.Now()
			_, _ = eng.TopKOn(req)
			lat[i] = time.Since(t0)
		}
		return lat
	}
	measureInstrumented := func() []time.Duration {
		lat := make([]time.Duration, obsBenchRequests)
		for i := range lat {
			t0 := time.Now()
			tr := obs.NewTrace("topk", stageVec)
			ctx := obs.WithTrace(context.Background(), tr)
			_, _ = eng.TopKOnCtx(ctx, req)
			reqChild.Add(1)
			latChild.Record(time.Since(tr.Start))
			lat[i] = time.Since(t0)
		}
		return lat
	}

	best := func(cur, prev float64) float64 {
		if prev == 0 || cur < prev {
			return cur
		}
		return prev
	}
	var baseP50, instP50 float64
	for r := 0; r < obsBenchRounds; r++ {
		baseP50 = best(pctUs(measureBase(), 0.50), baseP50)
		instP50 = best(pctUs(measureInstrumented(), 0.50), instP50)
	}

	stageChild := stageVec.With("rank")
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stageChild.Record(time.Microsecond)
			reqChild.Add(1)
		}
	})
	recordAllocs := testing.AllocsPerRun(1000, func() {
		stageChild.Record(time.Microsecond)
		latChild.Record(time.Microsecond)
		reqChild.Add(1)
	})

	var sketch obs.ScoreSketch
	sketchRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sketch.Record(float64(i%64) * 0.125)
		}
	})
	sketchAllocs := testing.AllocsPerRun(1000, func() {
		sketch.Record(1.5)
	})

	freshP50, err := measureFreshness()
	if err != nil {
		return err
	}

	report := obsBenchReport{
		GeneratedAt:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		Workload:          fmt.Sprintf("warm single-worker topk, space=1000x2000 seqfm d=64 l=1 n.=20 J=%d", serve.BenchJ),
		BaseP50Ns:         int64(baseP50 * 1e3),
		InstrumentedP50Ns: int64(instP50 * 1e3),
		RecordNsPerOp:     res.NsPerOp(),
		RecordAllocsPerOp: recordAllocs,

		SketchRecordNsPerOp:     sketchRes.NsPerOp(),
		SketchRecordAllocsPerOp: sketchAllocs,
		FreshnessP50MS:          freshP50,
		PublishIntervalMS:       float64(obsBenchPublishInterval) / 1e6,
	}
	if report.BaseP50Ns > 0 {
		report.P50Ratio = float64(report.InstrumentedP50Ns) / float64(report.BaseP50Ns)
	}
	fmt.Printf("obs: base p50 %.1fµs, instrumented p50 %.1fµs → ratio %.3fx (bar 1.05)\n",
		baseP50, instP50, report.P50Ratio)
	fmt.Printf("obs: record path %dns/op, %.1f allocs/op (bar 0)\n",
		report.RecordNsPerOp, report.RecordAllocsPerOp)
	fmt.Printf("obs: sketch record %dns/op, %.1f allocs/op (bar 0)\n",
		report.SketchRecordNsPerOp, report.SketchRecordAllocsPerOp)
	fmt.Printf("obs: freshness p50 %.1fms at a %.0fms publish interval (bar 2x)\n",
		report.FreshnessP50MS, report.PublishIntervalMS)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
