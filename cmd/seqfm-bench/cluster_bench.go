package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"seqfm/internal/ckpt"
	"seqfm/internal/cluster"
	"seqfm/internal/data"
	"seqfm/internal/httpapi"
	"seqfm/internal/online"
	"seqfm/internal/serve"
	"seqfm/internal/wal"
)

// clusterBenchEvents is the recovery-comparison stream length. At the
// WAL-bench replay throughput (~7.5k events/s full retrain) the full replay
// takes seconds while the compacted one replays only the post-cut suffix —
// the economics the compactor exists for.
const (
	clusterBenchEvents = 100_000
	clusterBenchCut    = 90_000 // state checkpoint + compaction point
)

// clusterRouterEntry compares read latency through the router tier against
// hitting the owning shard directly — the price of the extra hop.
type clusterRouterEntry struct {
	Requests    int     `json:"requests"`
	DirectP50Ms float64 `json:"direct_p50_ms"`
	RouterP50Ms float64 `json:"router_p50_ms"`
	Ratio       float64 `json:"router_over_direct"`
}

// clusterFailoverEntry measures a primary kill → follower promotion →
// router-visible recovery, end to end.
type clusterFailoverEntry struct {
	PromoteMs float64 `json:"promote_ms"`
	// FirstWriteMs is the wall time from killing the primary to the first
	// feedback write accepted (202) through the router — promotion, map
	// repoint and the router's fence-and-retry included.
	FirstWriteMs float64 `json:"failover_first_accepted_write_ms"`
}

// clusterRecoveryEntry compares recovering the same stream from the full log
// (replay everything) against the state checkpoint + compacted suffix.
type clusterRecoveryEntry struct {
	Events          int     `json:"events"`
	CutSeq          uint64  `json:"cut_seq"`
	SegmentsRemoved int     `json:"segments_removed"`
	FullReplayMs    float64 `json:"full_replay_ms"`
	CompactedMs     float64 `json:"compacted_recovery_ms"`
	Speedup         float64 `json:"recovery_speedup"`
}

// clusterBenchReport is the BENCH_cluster.json schema.
type clusterBenchReport struct {
	GeneratedAt string               `json:"generated_at"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Workload    string               `json:"workload"`
	Router      clusterRouterEntry   `json:"router"`
	Failover    clusterFailoverEntry `json:"failover"`
	Recovery    clusterRecoveryEntry `json:"recovery"`
}

// newBenchShard builds one read-serving shard (engine + HTTP layer, no
// online learner) on the standard WAL-bench workload.
func newBenchShard() (*httptest.Server, func(), error) {
	m, ds, err := online.BenchWorkload()
	if err != nil {
		return nil, nil, err
	}
	eng := serve.NewEngine(m, serve.Config{Workers: 1})
	s, err := httpapi.New(httpapi.Config{Engine: eng, Dataset: ds, Model: m})
	if err != nil {
		eng.Close()
		return nil, nil, err
	}
	srv := httptest.NewServer(s.Routes())
	return srv, func() { srv.Close(); eng.Close() }, nil
}

func writeShardMapFile(path string, shards []cluster.Shard) error {
	buf, err := json.Marshal(cluster.ShardMap{Shards: shards})
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

func p50ms(samples []time.Duration) float64 {
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	return float64(samples[len(samples)/2].Microseconds()) / 1000
}

// benchRouterOverhead drives identical top-K reads at two shards directly
// (to whichever shard the map assigns each user) and through the router.
func benchRouterOverhead(tmp string) (clusterRouterEntry, error) {
	srvA, closeA, err := newBenchShard()
	if err != nil {
		return clusterRouterEntry{}, err
	}
	defer closeA()
	srvB, closeB, err := newBenchShard()
	if err != nil {
		return clusterRouterEntry{}, err
	}
	defer closeB()

	shards := []cluster.Shard{
		{Name: "s0", Primary: srvA.URL},
		{Name: "s1", Primary: srvB.URL},
	}
	mapPath := filepath.Join(tmp, "shards.json")
	if err := writeShardMapFile(mapPath, shards); err != nil {
		return clusterRouterEntry{}, err
	}
	m, err := cluster.LoadShardMap(mapPath)
	if err != nil {
		return clusterRouterEntry{}, err
	}
	rt, err := cluster.NewRouter(m, cluster.RouterConfig{MapPath: mapPath})
	if err != nil {
		return clusterRouterEntry{}, err
	}
	srvR := httptest.NewServer(rt.Routes())
	defer srvR.Close()

	const requests = 400
	post := func(url string, user int) (time.Duration, error) {
		body := fmt.Sprintf(`{"user":%d,"k":10}`, user)
		start := time.Now()
		resp, err := http.Post(url+"/v1/topk", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("topk %s: status %d", url, resp.StatusCode)
		}
		return time.Since(start), nil
	}
	// Warm both paths (connection setup, first-touch caches) off the clock.
	for u := 0; u < 8; u++ {
		if _, err := post(srvR.URL, u); err != nil {
			return clusterRouterEntry{}, err
		}
		if _, err := post(shards[m.Lookup(u)].Primary, u); err != nil {
			return clusterRouterEntry{}, err
		}
	}
	direct := make([]time.Duration, 0, requests)
	routed := make([]time.Duration, 0, requests)
	for i := 0; i < requests; i++ {
		u := i % online.BenchUsers
		d, err := post(shards[m.Lookup(u)].Primary, u)
		if err != nil {
			return clusterRouterEntry{}, err
		}
		direct = append(direct, d)
		r, err := post(srvR.URL, u)
		if err != nil {
			return clusterRouterEntry{}, err
		}
		routed = append(routed, r)
	}
	e := clusterRouterEntry{
		Requests:    requests,
		DirectP50Ms: p50ms(direct),
		RouterP50Ms: p50ms(routed),
	}
	e.Ratio = e.RouterP50Ms / e.DirectP50Ms
	return e, nil
}

// benchFailover kills a shard's primary mid-stream, promotes its follower
// through the real /v1/replica/promote endpoint, repoints the map, and
// measures the wall time until the router accepts a write again.
func benchFailover(tmp string) (clusterFailoverEntry, error) {
	mP, ds, err := online.BenchWorkload()
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	logP, err := wal.Open(filepath.Join(tmp, "failover-wal"), wal.Options{Policy: wal.SyncNone})
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	defer logP.Close()
	engP := serve.NewEngine(mP.Clone(), serve.Config{Workers: 1})
	defer engP.Close()
	lP, err := online.NewLearner(mP, ds, engP, online.Config{
		Train: online.BenchTrainConfig(), BatchSize: 64, Log: logP,
	})
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	sP, err := httpapi.New(httpapi.Config{Engine: engP, Dataset: ds, Model: mP, Learner: lP, WAL: logP})
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	srvP := httptest.NewServer(sP.Routes())
	defer srvP.Close()
	for i, ev := range online.BenchEvents(200) {
		if err := lP.Ingest(ev[0], ev[1], 1); err != nil {
			return clusterFailoverEntry{}, err
		}
		if (i+1)%100 == 0 {
			lP.Sync()
		}
	}
	lP.Sync()

	// Follower, armed for promotion through the real endpoint.
	mF, fF, bootGen, err := online.FetchSnapshot(srvP.URL, nil)
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	engF := serve.NewEngine(mF, serve.Config{Workers: 1})
	defer engF.Close()
	lF, err := online.NewLearnerFromSnapshot(mF, fF, ds, engF, online.Config{
		Train: online.BenchTrainConfig(), BatchSize: 64,
	})
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	rep := online.NewReplica(lF, &online.HTTPLogSource{Base: srvP.URL}, bootGen, online.ReplicaConfig{})
	if _, err := rep.CatchUp(); err != nil {
		return clusterFailoverEntry{}, err
	}
	defer rep.Close()
	promoteDir := filepath.Join(tmp, "failover-wal2")
	sF, err := httpapi.New(httpapi.Config{
		Engine: engF, Dataset: ds, Model: mF, Learner: lF, Replica: rep, Primary: srvP.URL,
		Promote: func() (httpapi.PromoteInfo, error) {
			res, err := cluster.Promote(cluster.Promotion{
				Replica: rep, Learner: lF,
				WALDir:       promoteDir,
				WALOptions:   wal.Options{Policy: wal.SyncNone},
				SnapshotPath: filepath.Join(promoteDir, "state.ckpt"),
			})
			if err != nil {
				return httpapi.PromoteInfo{}, err
			}
			return httpapi.PromoteInfo{
				Epoch: uint64(res.Epoch), AppliedSeq: res.AppliedSeq,
				Generation: res.Generation, WALDir: res.WALDir,
			}, nil
		},
	})
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	srvF := httptest.NewServer(sF.Routes())
	defer srvF.Close()

	mapPath := filepath.Join(tmp, "failover-shards.json")
	if err := writeShardMapFile(mapPath, []cluster.Shard{{Name: "s0", Primary: srvP.URL, Followers: []string{srvF.URL}}}); err != nil {
		return clusterFailoverEntry{}, err
	}
	m, err := cluster.LoadShardMap(mapPath)
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	rt, err := cluster.NewRouter(m, cluster.RouterConfig{MapPath: mapPath})
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	srvR := httptest.NewServer(rt.Routes())
	defer srvR.Close()

	feedback := func() (int, error) {
		resp, err := http.Post(srvR.URL+"/v1/feedback", "application/json",
			bytes.NewReader([]byte(`{"user":1,"object":2,"label":1}`)))
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	if code, err := feedback(); err != nil || code != http.StatusAccepted {
		return clusterFailoverEntry{}, fmt.Errorf("pre-failover write: status %d, err %v", code, err)
	}

	// Kill, promote, repoint, and clock the first accepted write.
	t0 := time.Now()
	srvP.Close()
	pStart := time.Now()
	resp, err := http.Post(srvF.URL+"/v1/replica/promote", "application/json", nil)
	if err != nil {
		return clusterFailoverEntry{}, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clusterFailoverEntry{}, fmt.Errorf("promote: status %d", resp.StatusCode)
	}
	promoteMs := float64(time.Since(pStart).Microseconds()) / 1000
	defer func() {
		// The promoted learner owns a trainer and a log now.
		lF.Close()
		if wlog := lF.WAL(); wlog != nil {
			wlog.Close()
		}
	}()
	if err := writeShardMapFile(mapPath, []cluster.Shard{{Name: "s0", Primary: srvF.URL}}); err != nil {
		return clusterFailoverEntry{}, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, err := feedback()
		if err == nil && code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			return clusterFailoverEntry{}, fmt.Errorf("no accepted write within 10s of failover (last status %d, err %v)", code, err)
		}
		time.Sleep(time.Millisecond)
	}
	return clusterFailoverEntry{
		PromoteMs:    promoteMs,
		FirstWriteMs: float64(time.Since(t0).Microseconds()) / 1000,
	}, nil
}

// driveClusterLog ingests the recovery stream into dir, writing the state
// checkpoint at the cut. Returns the checkpoint's covered sequence.
func driveClusterLog(dir, statePath string, opts wal.Options) (uint64, error) {
	log, err := wal.Open(dir, opts)
	if err != nil {
		return 0, err
	}
	defer log.Close()
	m, ds, err := online.BenchWorkload()
	if err != nil {
		return 0, err
	}
	eng := serve.NewEngine(m.Clone(), serve.Config{Workers: 1})
	defer eng.Close()
	l, err := online.NewLearner(m, ds, eng, online.Config{
		Train: online.BenchTrainConfig(), BatchSize: 64, Log: log,
	})
	if err != nil {
		return 0, err
	}
	var cut uint64
	for i, ev := range online.BenchEvents(clusterBenchEvents) {
		if err := l.Ingest(ev[0], ev[1], 1); err != nil {
			return 0, err
		}
		if (i+1)%online.BenchSyncEvery == 0 {
			l.Sync()
		}
		if i+1 == clusterBenchCut {
			if err := l.CheckpointStateFile(statePath); err != nil {
				return 0, err
			}
			cut = l.Stats().SnapshotSeq
		}
	}
	l.Sync()
	return cut, nil
}

// benchRecovery recovers the identical stream twice: full replay of the
// whole log from a fresh learner, and state checkpoint + compacted suffix.
func benchRecovery(tmp string, ds *data.Dataset) (clusterRecoveryEntry, error) {
	opts := wal.Options{Policy: wal.SyncNone, SegmentBytes: 256 << 10}
	dir := filepath.Join(tmp, "recovery-wal")
	statePath := filepath.Join(tmp, "recovery-state.ckpt")
	cut, err := driveClusterLog(dir, statePath, opts)
	if err != nil {
		return clusterRecoveryEntry{}, err
	}

	e := clusterRecoveryEntry{Events: clusterBenchEvents, CutSeq: cut}

	// Full recovery: no snapshot — replay (and re-train) the entire log.
	{
		log, err := wal.Open(dir, opts)
		if err != nil {
			return clusterRecoveryEntry{}, err
		}
		m, _, err := online.BenchWorkload()
		if err != nil {
			log.Close()
			return clusterRecoveryEntry{}, err
		}
		eng := serve.NewEngine(m.Clone(), serve.Config{Workers: 1})
		l, err := online.NewLearner(m, ds, eng, online.Config{
			Train: online.BenchTrainConfig(), BatchSize: 64, Log: log,
		})
		if err != nil {
			eng.Close()
			log.Close()
			return clusterRecoveryEntry{}, err
		}
		start := time.Now()
		if _, err := l.ReplayLog(); err != nil {
			eng.Close()
			log.Close()
			return clusterRecoveryEntry{}, err
		}
		e.FullReplayMs = float64(time.Since(start).Microseconds()) / 1000
		eng.Close()
		log.Close()
	}

	// Compacted recovery: compact through the cut, then recover from the
	// state checkpoint + surviving suffix — snapshot load included in the
	// measurement, exactly the boot path a compacted node takes.
	{
		log, err := wal.Open(dir, opts)
		if err != nil {
			return clusterRecoveryEntry{}, err
		}
		st, err := log.Compact(cut)
		if err != nil {
			log.Close()
			return clusterRecoveryEntry{}, err
		}
		if st.Removed == 0 {
			log.Close()
			return clusterRecoveryEntry{}, fmt.Errorf("compaction removed no segments (cut %d, first %d): the comparison is void", cut, st.FirstSeq)
		}
		e.SegmentsRemoved = st.Removed
		log.Close()

		log, err = wal.Open(dir, opts)
		if err != nil {
			return clusterRecoveryEntry{}, err
		}
		start := time.Now()
		m, f, err := ckpt.LoadFile(statePath)
		if err != nil {
			log.Close()
			return clusterRecoveryEntry{}, err
		}
		eng := serve.NewEngine(m.Clone(), serve.Config{Workers: 1})
		l, err := online.NewLearnerFromSnapshot(m, f, ds, eng, online.Config{
			Train: online.BenchTrainConfig(), BatchSize: 64, Log: log,
		})
		if err != nil {
			eng.Close()
			log.Close()
			return clusterRecoveryEntry{}, err
		}
		if _, err := l.ReplayLog(); err != nil {
			eng.Close()
			log.Close()
			return clusterRecoveryEntry{}, err
		}
		e.CompactedMs = float64(time.Since(start).Microseconds()) / 1000
		eng.Close()
		log.Close()
	}
	e.Speedup = e.FullReplayMs / e.CompactedMs
	return e, nil
}

// runClusterBench is seqfm-bench -mode cluster: router-hop overhead on the
// read path, failover time-to-first-accepted-write, and compacted vs full
// recovery — written to BENCH_cluster.json.
func runClusterBench(outPath string) error {
	tmp, err := os.MkdirTemp("", "seqfm-cluster-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	_, ds, err := online.BenchWorkload()
	if err != nil {
		return err
	}
	report := clusterBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workload: fmt.Sprintf("space=%dx%d seqfm d=8; 2 shards; recovery events=%d cut=%d sync-every=%d",
			online.BenchUsers, online.BenchObjects, clusterBenchEvents, clusterBenchCut, online.BenchSyncEvery),
	}

	re, err := benchRouterOverhead(tmp)
	if err != nil {
		return fmt.Errorf("router overhead: %w", err)
	}
	report.Router = re
	fmt.Printf("router read p50: %.3fms via router vs %.3fms direct (%.2fx, %d requests each)\n",
		re.RouterP50Ms, re.DirectP50Ms, re.Ratio, re.Requests)

	fe, err := benchFailover(tmp)
	if err != nil {
		return fmt.Errorf("failover: %w", err)
	}
	report.Failover = fe
	fmt.Printf("failover: first accepted write %.1fms after primary kill (promotion %.1fms)\n",
		fe.FirstWriteMs, fe.PromoteMs)

	ce, err := benchRecovery(tmp, ds)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	report.Recovery = ce
	fmt.Printf("recovery at %d events: full replay %.0fms vs compacted %.0fms (%.1fx, %d segments dropped)\n",
		ce.Events, ce.FullReplayMs, ce.CompactedMs, ce.Speedup, ce.SegmentsRemoved)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
