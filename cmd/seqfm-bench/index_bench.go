package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"seqfm/internal/core"
	"seqfm/internal/feature"
	"seqfm/internal/index"
	"seqfm/internal/serve"
)

// The fixed retrieval-benchmark workload, at the model's default embedding
// dimensionality, recall@100 measured against the exact flat scan over the
// same vectors. Literals live here so successive BENCH_index.json files
// stay diffable.
//
// The synthetic embeddings are a mixture of √n Gaussian clusters (unit-
// normal centers, σ=0.35 per-dimension spread): trained item-embedding
// tables cluster by co-consumption, and cluster structure is precisely
// what graph ANN exploits. Iid-normal vectors at d=64 — the structureless
// worst case, where similarity concentration drives any graph method
// toward brute-force cost (recall@100 ≈ 0.85 at efSearch=256 on 100k
// items, at flat-scan latency) — are deliberately not the headline
// workload; EXPERIMENTS.md records that cliff. Queries are cluster-coherent
// (center + noise), the shape RetrievalQuery produces for a user whose
// recent history shares a taste. The graph runs denser than the package
// defaults (M=24, efConstruction=200); the efSearch sweep starts at 128
// because Search clamps the beam up to n=topK=100, so sweeping below the
// clamp would measure the same run twice.
const (
	idxBenchDim     = 64
	idxBenchM       = 24
	idxBenchEfCons  = 200
	idxBenchTopK    = 100
	idxBenchQueries = 200
	idxBenchSeed    = 1
	idxBenchSpread  = 0.35
)

var (
	idxBenchSizes     = []int{10_000, 100_000, 1_000_000}
	idxBenchEfSweep   = []int{128, 256, 512}
	idxBenchQueries1M = 100 // exact ground truth at 1M costs ~50ms/query
)

// synthClusters draws the mixture centers for an n-item catalog.
func synthClusters(n int, rng *rand.Rand) [][]float64 {
	c := int(math.Sqrt(float64(n)))
	centers := make([][]float64, c)
	for i := range centers {
		v := make([]float64, idxBenchDim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		centers[i] = v
	}
	return centers
}

// synthVec writes one clustered embedding: its cluster's center plus
// spread-scaled noise. Object id → cluster id%len(centers).
func synthVec(centers [][]float64, id int, rng *rand.Rand, dst []float64) {
	c := centers[id%len(centers)]
	for j := range dst {
		dst[j] = c[j] + idxBenchSpread*rng.NormFloat64()
	}
}

// indexBenchEntry is one measured (catalog size, backend, efSearch) cell.
type indexBenchEntry struct {
	Items       int     `json:"items"`
	Dim         int     `json:"dim"`
	Backend     string  `json:"backend"`
	EfSearch    int     `json:"ef_search,omitempty"` // 0 for the flat scan
	BuildSec    float64 `json:"build_sec"`
	QPS         float64 `json:"qps"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	RecallAt100 float64 `json:"recall_at_100"`
}

// indexEndToEnd is the acceptance-criterion scenario: Engine.Recommend
// (retrieve N from the catalog index + exact re-rank) against the old
// full-catalog Engine.TopK brute force, on a 100k-object SeqFM.
type indexEndToEnd struct {
	Objects          int     `json:"objects"`
	K                int     `json:"k"`
	N                int     `json:"n"`
	IndexBuildSec    float64 `json:"index_build_sec"`
	RecommendP50Ms   float64 `json:"recommend_p50_ms"`
	RecommendP99Ms   float64 `json:"recommend_p99_ms"`
	FlatTopKP50Ms    float64 `json:"flat_topk_p50_ms"`
	SpeedupP50       float64 `json:"speedup_p50"`
	RetrievalRecallN float64 `json:"retrieval_recall_at_n"` // engine-sampled recall@N vs exact
}

// indexBenchReport is the BENCH_index.json schema.
type indexBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Workload    string            `json:"workload"`
	Retrieval   []indexBenchEntry `json:"retrieval"`
	EndToEnd    indexEndToEnd     `json:"end_to_end"`
}

// runIndexBench measures the retrieval subsystem: per catalog size, flat
// and HNSW build time, query latency percentiles, throughput and recall@100
// across the efSearch sweep; then the end-to-end Recommend-vs-brute-force
// scenario. Results land in outPath (default BENCH_index.json).
func runIndexBench(outPath string) error {
	report := indexBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workload: fmt.Sprintf(
			"clustered synthetic embeddings (sqrt(n) Gaussian clusters, spread %.2f) d=%d; hnsw M=%d efConstruction=%d buildWorkers=%d; recall@%d vs flat scan",
			idxBenchSpread, idxBenchDim, idxBenchM, idxBenchEfCons, runtime.GOMAXPROCS(0), idxBenchTopK),
	}

	// The end-to-end scenario runs first: it is the acceptance criterion,
	// and the 1M retrieval build is the long pole — fail fast if the
	// pipeline itself regressed.
	e2e, err := benchEndToEnd()
	if err != nil {
		return err
	}
	report.EndToEnd = e2e

	for _, n := range idxBenchSizes {
		entries, err := benchCatalogSize(n)
		if err != nil {
			return err
		}
		report.Retrieval = append(report.Retrieval, entries...)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// benchCatalogSize measures one catalog size: flat baseline plus the HNSW
// efSearch sweep, all over the same store and query set.
func benchCatalogSize(n int) ([]indexBenchEntry, error) {
	fmt.Printf("== %d items ==\n", n)
	rng := rand.New(rand.NewSource(idxBenchSeed))
	centers := synthClusters(n, rng)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	store := index.BuildStore(ids, idxBenchDim, func(id int, dst []float64) {
		synthVec(centers, id, rng, dst)
	})
	queries := idxBenchQueries
	if n >= 1_000_000 {
		queries = idxBenchQueries1M
	}
	qs := make([][]float64, queries)
	for i := range qs {
		q := make([]float64, idxBenchDim)
		synthVec(centers, rng.Intn(n), rng, q)
		qs[i] = q
	}

	flat := index.NewFlat(store)
	truth := make([][]index.Result, len(qs))
	flatLat := make([]time.Duration, len(qs))
	for i, q := range qs {
		start := time.Now()
		truth[i] = flat.Search(q, idxBenchTopK, nil)
		flatLat[i] = time.Since(start)
	}
	var entries []indexBenchEntry
	fe := indexBenchEntry{
		Items: n, Dim: idxBenchDim, Backend: "flat",
		QPS:         qps(flatLat),
		P50Us:       pctUs(flatLat, 0.50),
		P99Us:       pctUs(flatLat, 0.99),
		RecallAt100: 1,
	}
	entries = append(entries, fe)
	fmt.Printf("flat                  p50=%8.1fµs p99=%8.1fµs qps=%8.0f\n", fe.P50Us, fe.P99Us, fe.QPS)

	buildStart := time.Now()
	h := index.NewHNSW(store, index.Config{
		M:              idxBenchM,
		EfConstruction: idxBenchEfCons,
		Seed:           idxBenchSeed,
		BuildWorkers:   -1,
	})
	buildSec := time.Since(buildStart).Seconds()
	fmt.Printf("hnsw build %.1fs\n", buildSec)

	for _, ef := range idxBenchEfSweep {
		// EfSearch is a query-time knob: rebuild-free sweeps reuse the graph.
		h.SetEfSearch(ef)
		lat := make([]time.Duration, len(qs))
		var recall float64
		for i, q := range qs {
			start := time.Now()
			got := h.Search(q, idxBenchTopK, nil)
			lat[i] = time.Since(start)
			recall += overlap(got, truth[i])
		}
		recall /= float64(len(qs))
		e := indexBenchEntry{
			Items: n, Dim: idxBenchDim, Backend: "hnsw", EfSearch: ef,
			BuildSec:    buildSec,
			QPS:         qps(lat),
			P50Us:       pctUs(lat, 0.50),
			P99Us:       pctUs(lat, 0.99),
			RecallAt100: recall,
		}
		entries = append(entries, e)
		fmt.Printf("hnsw efSearch=%-4d    p50=%8.1fµs p99=%8.1fµs qps=%8.0f recall@%d=%.4f\n",
			ef, e.P50Us, e.P99Us, e.QPS, idxBenchTopK, recall)
	}
	return entries, nil
}

// benchEndToEnd measures the acceptance scenario: a SeqFM over a
// 100k-object catalog served by an indexed engine. Recommend (ANN retrieve
// N=1000, exclude seen, exact re-rank, top K=100) against the pre-index
// serving shape — TopK handed every object as an explicit candidate list.
func benchEndToEnd() (indexEndToEnd, error) {
	const (
		objects     = 100_000
		users       = 100
		k           = 100
		retrieveN   = 1000
		recRequests = 20
		topkReqs    = 3
	)
	fmt.Printf("== end-to-end: recommend vs flat top-%d at %d objects ==\n", k, objects)
	space := feature.Space{NumUsers: users, NumObjects: objects}
	m, err := core.New(core.DefaultConfig(space))
	if err != nil {
		return indexEndToEnd{}, err
	}
	// A freshly initialised embedding table is iid noise — the adversarial
	// geometry, not the clustered one training produces. Plant the same
	// mixture the retrieval bench uses into the object rows of M° (scaled
	// to the table's init magnitude; cosine retrieval is scale-free), so
	// the scenario measures the pipeline on trained-like geometry.
	rng := rand.New(rand.NewSource(idxBenchSeed))
	centers := synthClusters(objects, rng)
	for _, p := range m.Params() {
		if p.Name != "seqfm.embStatic" {
			continue
		}
		d := m.EmbedDim()
		row := make([]float64, d)
		for o := 0; o < objects; o++ {
			synthVec(centers, o, rng, row)
			for j, x := range row {
				p.Value.Data[(users+o)*d+j] = 0.01 * x
			}
		}
	}
	catalog := make([]int, objects)
	for i := range catalog {
		catalog[i] = i
	}
	buildStart := time.Now()
	eng := serve.NewEngine(m, serve.Config{
		Index: &serve.IndexConfig{
			Objects:           catalog,
			ANN:               index.Config{M: idxBenchM, EfConstruction: idxBenchEfCons, Seed: idxBenchSeed, BuildWorkers: -1},
			RecallSampleEvery: 1, // sample every request: the bench wants the recall number
		},
	})
	buildSec := time.Since(buildStart).Seconds()
	defer eng.Close()
	fmt.Printf("catalog index built in %.1fs\n", buildSec)

	// Each request models a taste-coherent user: a history drawn from one
	// cluster (object id ≡ cluster mod len(centers)), the shape whose mean
	// RetrievalQuery is designed for. Uniform histories would average to
	// the origin and measure retrieval of nothing.
	reqHist := func() []int {
		c := rng.Intn(len(centers))
		hist := make([]int, 20)
		for i := range hist {
			hist[i] = (rng.Intn(objects/len(centers)))*len(centers) + c
		}
		return hist
	}

	recLat := make([]time.Duration, recRequests)
	for i := range recLat {
		base := feature.Instance{User: i % users, Hist: reqHist(), UserAttr: feature.Pad, TargetAttr: feature.Pad}
		start := time.Now()
		if _, err := eng.Recommend(serve.RecommendRequest{Base: base, K: k, N: retrieveN}); err != nil {
			return indexEndToEnd{}, err
		}
		recLat[i] = time.Since(start)
	}

	topkLat := make([]time.Duration, topkReqs)
	for i := range topkLat {
		base := feature.Instance{User: i % users, Hist: reqHist(), UserAttr: feature.Pad, TargetAttr: feature.Pad}
		start := time.Now()
		eng.TopK(serve.TopKRequest{Base: base, Candidates: catalog, K: k})
		topkLat[i] = time.Since(start)
	}

	st := eng.Stats()
	e2e := indexEndToEnd{
		Objects:        objects,
		K:              k,
		N:              retrieveN,
		IndexBuildSec:  buildSec,
		RecommendP50Ms: pctUs(recLat, 0.50) / 1e3,
		RecommendP99Ms: pctUs(recLat, 0.99) / 1e3,
		FlatTopKP50Ms:  pctUs(topkLat, 0.50) / 1e3,
	}
	if e2e.RecommendP50Ms > 0 {
		e2e.SpeedupP50 = e2e.FlatTopKP50Ms / e2e.RecommendP50Ms
	}
	if st.RecallWanted > 0 {
		e2e.RetrievalRecallN = float64(st.RecallHits) / float64(st.RecallWanted)
	}
	fmt.Printf("recommend p50=%.1fms p99=%.1fms | flat top-k p50=%.1fms → %.1fx speedup, retrieval recall@%d=%.4f\n",
		e2e.RecommendP50Ms, e2e.RecommendP99Ms, e2e.FlatTopKP50Ms, e2e.SpeedupP50, retrieveN, e2e.RetrievalRecallN)
	return e2e, nil
}

// overlap returns |got ∩ want| / |want| over result ids.
func overlap(got, want []index.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	ids := make(map[int]struct{}, len(got))
	for _, r := range got {
		ids[r.ID] = struct{}{}
	}
	hit := 0
	for _, r := range want {
		if _, ok := ids[r.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func pctUs(lat []time.Duration, q float64) float64 {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[int(q*float64(len(s)-1))].Nanoseconds()) / 1e3
}

func qps(lat []time.Duration) float64 {
	var total time.Duration
	for _, l := range lat {
		total += l
	}
	if total == 0 {
		return 0
	}
	return float64(len(lat)) / total.Seconds()
}
