package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"seqfm/internal/core"
	"seqfm/internal/experiments"
	"seqfm/internal/httpapi"
	"seqfm/internal/obs"
	"seqfm/internal/online"
	"seqfm/internal/serve"
	"seqfm/internal/traffic"
)

// Traffic-bench knobs. The workload plan is a pure function of these and
// trafficSeed, so successive BENCH_traffic.json files offer byte-identical
// request streams; only the measured latencies move.
const (
	trafficSeed     = 7
	trafficRunDur   = 2 * time.Second
	trafficProbeDur = 1500 * time.Millisecond
	trafficBaseRate = 50.0 // uncontended reference rate
)

// trafficFixedRates are the committed fixed-rate points (req/s).
var trafficFixedRates = []float64{250, 1000, 4000}

// trafficSLO defines "sustainable" for the saturation search: at most 1%
// shed and a 50ms admitted read p99.
var trafficSLO = traffic.SLO{MaxShedRate: 0.01, MaxP99: 50 * time.Millisecond}

// trafficKindJSON is one endpoint class's outcome in a run.
type trafficKindJSON struct {
	Sent    int64   `json:"sent"`
	OK      int64   `json:"ok"`
	Shed    int64   `json:"shed"`
	Errors  int64   `json:"errors"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
	OKP99Ms float64 `json:"ok_p99_ms"`
}

// trafficRunJSON is one measured run.
type trafficRunJSON struct {
	OfferedRPS  float64                    `json:"offered_rps"`
	AchievedRPS float64                    `json:"achieved_rps"`
	ElapsedSec  float64                    `json:"elapsed_sec"`
	MaxLagMs    float64                    `json:"max_lag_ms"`
	ShedRate    float64                    `json:"shed_rate"`
	ErrorRate   float64                    `json:"error_rate"`
	ReadP99Ms   float64                    `json:"read_p99_ms"`
	PerEndpoint map[string]trafficKindJSON `json:"per_endpoint"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func trafficRunJSONOf(rep *traffic.Report) trafficRunJSON {
	out := trafficRunJSON{
		OfferedRPS:  rep.Offered,
		AchievedRPS: rep.Achieved,
		ElapsedSec:  rep.Elapsed.Seconds(),
		MaxLagMs:    ms(rep.MaxLag),
		ShedRate:    rep.ShedRate(),
		ErrorRate:   rep.ErrorRate(),
		ReadP99Ms:   ms(rep.P99()),
		PerEndpoint: make(map[string]trafficKindJSON, len(rep.PerKind)),
	}
	for name, ks := range rep.PerKind {
		out.PerEndpoint[name] = trafficKindJSON{
			Sent: ks.Sent, OK: ks.OK, Shed: ks.Shed, Errors: ks.Errors,
			P50Ms: ms(ks.Latency.P50), P95Ms: ms(ks.Latency.P95),
			P99Ms: ms(ks.Latency.P99), MaxMs: ms(ks.Latency.Max),
			OKP99Ms: ms(ks.OKLatency.P99),
		}
	}
	return out
}

// trafficBenchReport is the BENCH_traffic.json schema.
type trafficBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Dataset     string `json:"dataset"`
	Stack       string `json:"stack"`
	Generator   string `json:"generator"`
	SLO         string `json:"slo"`

	Uncontended trafficRunJSON   `json:"uncontended"`
	FixedRates  []trafficRunJSON `json:"fixed_rates"`

	Saturation struct {
		SustainableRPS float64          `json:"sustainable_rps"`
		Probes         []trafficRunJSON `json:"probes"`
	} `json:"saturation"`

	Overload struct {
		trafficRunJSON
		UncontendedP99Ms float64 `json:"uncontended_p99_ms"`
		AdmittedP99Ms    float64 `json:"admitted_p99_ms"`
		P99Ratio         float64 `json:"p99_ratio"`
	} `json:"overload"`

	// MetricsCrossCheck is the harness-vs-/metrics agreement per endpoint,
	// scraped right after the uncontended run while the server's counters
	// hold exactly that run's traffic.
	MetricsCrossCheck map[string]trafficCrossJSON `json:"metrics_cross_check"`

	Checks struct {
		// ShedsExplicitly: at 2× the sustainable rate the server answered
		// overload with 429/503, not errors or a hang.
		ShedsExplicitly bool `json:"sheds_explicitly"`
		// NoServerErrors: no run produced a non-shed failure.
		NoServerErrors bool `json:"no_server_errors"`
		// AdmittedP99Bounded: admitted read p99 under 2× overload stayed
		// within 5× the uncontended p99 — admission protects the admitted.
		AdmittedP99Bounded bool `json:"admitted_p99_bounded"`
		// MetricsConsistent: the server's own /metrics series agree with
		// what the harness observed from outside (counts and percentiles).
		MetricsConsistent bool `json:"metrics_consistent"`
	} `json:"checks"`
}

// trafficCrossJSON is one endpoint's harness-vs-server comparison: what the
// load generator counted and timed from outside against the server's own
// seqfm_http_requests_total / seqfm_http_request_seconds series.
type trafficCrossJSON struct {
	HarnessSent  int64   `json:"harness_sent"`
	ServerSent   int64   `json:"server_sent"`
	HarnessOK    int64   `json:"harness_ok"`
	ServerOK     int64   `json:"server_ok"`
	HarnessP50Ms float64 `json:"harness_p50_ms"`
	ServerP50Ms  float64 `json:"server_p50_ms"`
	HarnessP99Ms float64 `json:"harness_p99_ms"`
	ServerP99Ms  float64 `json:"server_p99_ms"`
	OK           bool    `json:"ok"`
}

// countsAgree applies the 5% disagreement bar to a pair of counters (they
// match exactly in practice — every harness request reaches the mux).
func countsAgree(a, b int64) bool {
	if a == b {
		return true
	}
	hi := math.Max(float64(a), float64(b))
	return math.Abs(float64(a-b)) <= 0.05*hi
}

// pctAgree applies the disagreement bar to a percentile pair. The harness
// times from outside the mux and the server inside the handler, and both
// sides bucket at 32 buckets/decade (adjacent bucket ratio ≈ 1.075), so the
// same request stream can legitimately read one bucket apart: the bar is 5%
// compounded with one bucket width (≈ 13%), with a 500µs absolute floor for
// sub-millisecond latencies where scheduling jitter dominates.
func pctAgree(a, b time.Duration) bool {
	lo, hi := math.Min(float64(a), float64(b)), math.Max(float64(a), float64(b))
	if hi-lo <= float64(500*time.Microsecond) {
		return true
	}
	return hi <= lo*1.075*1.05
}

// crossCheckMetrics scrapes GET /metrics in-process and compares the
// server's own series against the harness's per-endpoint observations. The
// server's latency family is success-only, so it is compared against the
// harness's admitted-only (OKLatency) percentiles.
func crossCheckMetrics(h http.Handler, rep *traffic.Report) (map[string]trafficCrossJSON, bool, error) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		return nil, false, fmt.Errorf("GET /metrics: status %d", rec.Code)
	}
	samples, err := obs.ParsePrometheus(rec.Body)
	if err != nil {
		return nil, false, err
	}
	out := make(map[string]trafficCrossJSON, len(rep.PerKind))
	allOK := true
	for name, ks := range rep.PerKind {
		sent, _ := samples.SumValues("seqfm_http_requests_total", "endpoint", name)
		var okCount float64
		for _, smp := range samples {
			if smp.Name == "seqfm_http_requests_total" && smp.Labels["endpoint"] == name &&
				len(smp.Labels["code"]) == 3 && smp.Labels["code"][0] == '2' {
				okCount += smp.Value
			}
		}
		p50, _ := samples.Value("seqfm_http_request_seconds", "endpoint", name, "quantile", "0.5")
		p99, _ := samples.Value("seqfm_http_request_seconds", "endpoint", name, "quantile", "0.99")
		c := trafficCrossJSON{
			HarnessSent: ks.Sent, ServerSent: int64(sent),
			HarnessOK: ks.OK, ServerOK: int64(okCount),
			HarnessP50Ms: ms(ks.OKLatency.P50), ServerP50Ms: p50 * 1000,
			HarnessP99Ms: ms(ks.OKLatency.P99), ServerP99Ms: p99 * 1000,
		}
		c.OK = countsAgree(c.HarnessSent, c.ServerSent) && countsAgree(c.HarnessOK, c.ServerOK)
		if ks.OK > 0 {
			c.OK = c.OK &&
				pctAgree(ks.OKLatency.P50, time.Duration(p50*float64(time.Second))) &&
				pctAgree(ks.OKLatency.P99, time.Duration(p99*float64(time.Second)))
		}
		allOK = allOK && c.OK
		out[name] = c
	}
	return out, allOK, nil
}

// runTrafficBench assembles the full serving stack in-process — tiny-scale
// Gowalla stand-in, a seqfm arm and an FM baseline arm behind the sticky
// experiment tier, an online learner on the feedback path, bounded
// admission on every endpoint — and drives it with the open-loop traffic
// generator: an uncontended reference run, the committed fixed offered
// rates, a saturation search under the SLO, and a 2×-saturation overload
// run that must shed explicitly while keeping the admitted p99 bounded.
func runTrafficBench(outPath string) error {
	p := experiments.ParamsFor(experiments.ScaleTiny)

	ds, _, err := p.RankingDatasets()
	if err != nil {
		return err
	}
	m, err := core.New(core.Config{
		Space: ds.Space(), Dim: p.Dim, Layers: p.Layers,
		MaxSeqLen: p.SeqLen, KeepProb: 1, Seed: p.Seed,
	})
	if err != nil {
		return err
	}
	eng := serve.NewEngine(m.Clone(), serve.Config{})
	defer eng.Close()

	bm, err := p.BaselineModel(ds.Space(), "FM")
	if err != nil {
		return err
	}
	baseEng := serve.NewEngine(bm, serve.Config{})
	defer baseEng.Close()
	exp, err := serve.NewExperiments(
		[]serve.ExperimentArm{
			{Name: "seqfm", Engine: eng, Weight: 1},
			{Name: "fm", Engine: baseEng, Weight: 1},
		},
		serve.ExperimentsConfig{NumObjects: ds.NumObjects},
	)
	if err != nil {
		return err
	}

	learner, err := online.NewLearner(m, ds, eng, online.Config{
		MaxPending: 1 << 14,
		Interval:   25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer learner.Close()

	cores := runtime.GOMAXPROCS(0)
	srv, err := httpapi.New(httpapi.Config{
		Engine: eng, Dataset: ds, Model: m,
		Learner:     learner,
		Experiments: exp,
		ReadAdmission: &serve.AdmissionConfig{
			MaxConcurrent: 2 * cores, MaxQueue: 4 * cores, MaxWait: 25 * time.Millisecond,
		},
		FeedbackAdmission: &serve.AdmissionConfig{
			MaxConcurrent: cores, MaxQueue: 4 * cores, MaxWait: 25 * time.Millisecond,
		},
	})
	if err != nil {
		return err
	}
	h := srv.Routes()

	gen := traffic.Config{
		Seed:     trafficSeed,
		Duration: trafficRunDur,
		Users:    ds.NumUsers,
		Objects:  ds.NumObjects,
		Diurnal:  0.3,
	}

	report := trafficBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  cores,
		Dataset:     fmt.Sprintf("%s users=%d objects=%d", ds.Name, ds.NumUsers, ds.NumObjects),
		Stack: fmt.Sprintf(
			"arms=[seqfm d=%d, fm] sticky-hash experiment tier; online learner (interval=25ms); admission read=%d/%d feedback=%d/%d wait=25ms",
			p.Dim, 2*cores, 4*cores, cores, 4*cores),
		Generator: fmt.Sprintf(
			"open-loop seed=%d zipf_s=1.2 diurnal=0.3 mix=score:4/topk:2/recommend:2/feedback:2 run=%s",
			trafficSeed, trafficRunDur),
		SLO: fmt.Sprintf("shed<=%.0f%% and admitted read p99<=%s",
			trafficSLO.MaxShedRate*100, trafficSLO.MaxP99),
	}
	noErrors := true
	observe := func(rep *traffic.Report) trafficRunJSON {
		if rep.ErrorRate() > 0 {
			noErrors = false
		}
		return trafficRunJSONOf(rep)
	}

	// Phase 1: uncontended reference — the latency floor the overload run
	// is judged against.
	fmt.Printf("traffic: uncontended reference at %.0f req/s\n", trafficBaseRate)
	uncontended, err := traffic.RunAt(h, gen, trafficBaseRate)
	if err != nil {
		return err
	}
	report.Uncontended = observe(uncontended)
	fmt.Printf("  read p99 %.2fms, shed %.2f%%\n",
		ms(uncontended.P99()), 100*uncontended.ShedRate())

	// Phase 1b: scrape the server's own /metrics and cross-check it against
	// the harness's observations while the counters hold exactly the
	// uncontended run's traffic. The two views measure the same requests
	// through independent bookkeeping — disagreement means the telemetry
	// lies, which is worse than no telemetry.
	fmt.Println("traffic: /metrics cross-check")
	cross, crossOK, err := crossCheckMetrics(h, uncontended)
	if err != nil {
		return err
	}
	report.MetricsCrossCheck = cross
	report.Checks.MetricsConsistent = crossOK
	for name, c := range cross {
		fmt.Printf("  %-10s sent %d/%d ok %d/%d p50 %.2f/%.2fms p99 %.2f/%.2fms (harness/server) agree=%v\n",
			name, c.HarnessSent, c.ServerSent, c.HarnessOK, c.ServerOK,
			c.HarnessP50Ms, c.ServerP50Ms, c.HarnessP99Ms, c.ServerP99Ms, c.OK)
	}

	// Phase 2: the committed fixed offered rates.
	for _, rate := range trafficFixedRates {
		fmt.Printf("traffic: fixed rate %.0f req/s\n", rate)
		rep, err := traffic.RunAt(h, gen, rate)
		if err != nil {
			return err
		}
		report.FixedRates = append(report.FixedRates, observe(rep))
		fmt.Printf("  achieved %.0f req/s, read p99 %.2fms, shed %.2f%%\n",
			rep.Achieved, ms(rep.P99()), 100*rep.ShedRate())
	}

	// Phase 3: saturation search — geometric ramp then bisection.
	probeCfg := gen
	probeCfg.Duration = trafficProbeDur
	probeCfg.Rate = 2 * trafficBaseRate
	fmt.Println("traffic: saturation search")
	sustainable, probes, err := traffic.Saturation(h, probeCfg, trafficSLO, 10)
	if err != nil {
		return err
	}
	report.Saturation.SustainableRPS = sustainable
	for _, rep := range probes {
		report.Saturation.Probes = append(report.Saturation.Probes, observe(rep))
		fmt.Printf("  probe %.0f req/s: shed %.2f%%, read p99 %.2fms\n",
			rep.Offered, 100*rep.ShedRate(), ms(rep.P99()))
	}
	fmt.Printf("  sustainable: %.0f req/s\n", sustainable)
	if sustainable <= 0 {
		return fmt.Errorf("traffic bench: no sustainable rate found (SLO broken even at %.0f req/s)", probeCfg.Rate)
	}

	// Phase 4: 2× overload — the server must shed explicitly (429/503),
	// never error, and keep the admitted read p99 within 5× uncontended.
	overRate := 2 * sustainable
	fmt.Printf("traffic: overload at %.0f req/s (2x sustainable)\n", overRate)
	over, err := traffic.RunAt(h, gen, overRate)
	if err != nil {
		return err
	}
	report.Overload.trafficRunJSON = observe(over)
	report.Overload.UncontendedP99Ms = ms(uncontended.P99())
	report.Overload.AdmittedP99Ms = ms(over.P99())
	if u := ms(uncontended.P99()); u > 0 {
		report.Overload.P99Ratio = ms(over.P99()) / u
	}
	_, _, overShed, _ := over.Totals()
	report.Checks.ShedsExplicitly = overShed > 0
	report.Checks.NoServerErrors = noErrors
	report.Checks.AdmittedP99Bounded = report.Overload.P99Ratio <= 5
	fmt.Printf("  shed %.2f%% (%d), admitted read p99 %.2fms (%.1fx uncontended)\n",
		100*over.ShedRate(), overShed, ms(over.P99()), report.Overload.P99Ratio)

	for name, okCheck := range map[string]bool{
		"sheds_explicitly":     report.Checks.ShedsExplicitly,
		"no_server_errors":     report.Checks.NoServerErrors,
		"admitted_p99_bounded": report.Checks.AdmittedP99Bounded,
		"metrics_consistent":   report.Checks.MetricsConsistent,
	} {
		if !okCheck {
			fmt.Fprintf(os.Stderr, "traffic bench: CHECK FAILED: %s\n", name)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if !report.Checks.ShedsExplicitly || !report.Checks.NoServerErrors ||
		!report.Checks.AdmittedP99Bounded || !report.Checks.MetricsConsistent {
		return fmt.Errorf("traffic bench: acceptance checks failed (see %s)", outPath)
	}
	return nil
}
