package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"seqfm/internal/core"
	"seqfm/internal/feature"
	"seqfm/internal/serve"
)

// serveBenchEntry is one measured serving configuration.
type serveBenchEntry struct {
	Name        string `json:"name"`
	Engine      string `json:"engine"` // "compiled" (plan, the default) or "tape"
	Workers     int    `json:"workers"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// swapBenchEntry records the hot-swap-under-load scenario: top-K latency
// percentiles with and without a background publisher swapping generations.
type swapBenchEntry struct {
	Requests     int     `json:"requests"`
	Swaps        int64   `json:"swaps"`
	SteadyP50Us  float64 `json:"steady_p50_us"`
	SteadyP99Us  float64 `json:"steady_p99_us"`
	SwappingP50A float64 `json:"swapping_p50_us"`
	SwappingP99A float64 `json:"swapping_p99_us"`
	P50Ratio     float64 `json:"p50_ratio"` // swapping / steady (see EXPERIMENTS.md: the bar is on absolute swapping p50)
}

// serveBenchReport is the BENCH_serve.json schema.
type serveBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Workload    string            `json:"workload"`
	Entries     []serveBenchEntry `json:"entries"`
	HotSwap     swapBenchEntry    `json:"hot_swap"`
}

// runServeBench measures the exact workload of bench_test.go's
// BenchmarkServe* suite (serve.BenchWorkload): top-K over J=100 candidates
// at the paper's default model configuration.
func runServeBench(outPath string) error {
	report := serveBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workload:    fmt.Sprintf("space=1000x2000 seqfm d=64 l=1 n.=20 J=%d", serve.BenchJ),
	}

	// Each base job runs twice: once on the default compiled plan engine and
	// once forced onto the tape (the "_tape" rows), so BENCH_serve.json keeps
	// the two serving engines side by side.
	type job struct {
		name    string
		workers int
		run     func(b *testing.B, m *core.Model, ecfg serve.Config, inst feature.Instance, candidates []int)
	}
	base := []job{
		{"topk_cold_single", 1, func(b *testing.B, m *core.Model, ecfg serve.Config, inst feature.Instance, candidates []int) {
			// Fresh engine per op: no cache warmth, no parallelism — the
			// algorithmic win of the shared dynamic view alone.
			ecfg.Workers, ecfg.StaticCacheSize, ecfg.DynCacheSize = 1, -1, -1
			req := serve.TopKRequest{Base: inst, Candidates: candidates, K: 10}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := serve.NewEngine(m, ecfg)
				_ = eng.TopK(req)
				eng.Close()
			}
		}},
		{"topk_warm_single", 1, func(b *testing.B, m *core.Model, ecfg serve.Config, inst feature.Instance, candidates []int) {
			ecfg.Workers = 1
			eng := serve.NewEngine(m, ecfg)
			defer eng.Close()
			req := serve.TopKRequest{Base: inst, Candidates: candidates, K: 10}
			_ = eng.TopK(req)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = eng.TopK(req)
			}
		}},
		{"topk_warm_parallel", 0, func(b *testing.B, m *core.Model, ecfg serve.Config, inst feature.Instance, candidates []int) {
			eng := serve.NewEngine(m, ecfg)
			defer eng.Close()
			req := serve.TopKRequest{Base: inst, Candidates: candidates, K: 10}
			_ = eng.TopK(req)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = eng.TopK(req)
			}
		}},
		{"score_batch", 0, func(b *testing.B, m *core.Model, ecfg serve.Config, inst feature.Instance, candidates []int) {
			eng := serve.NewEngine(m, ecfg)
			defer eng.Close()
			insts := make([]feature.Instance, len(candidates))
			for i, c := range candidates {
				ci := inst
				ci.Target = c
				ci.Hist = append(append([]int{}, inst.Hist...), c) // distinct history per instance
				insts[i] = ci
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = eng.ScoreBatch(insts)
			}
		}},
	}

	m, inst, candidates, err := serve.BenchWorkload()
	if err != nil {
		return err
	}
	for _, j := range base {
		for _, engine := range []string{serve.EngineCompiled, serve.EngineTape} {
			name := j.name
			if engine == serve.EngineTape {
				name += "_tape"
			}
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				j.run(b, m, serve.Config{Engine: engine}, inst, candidates)
			})
			workers := j.workers
			if workers == 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			e := serveBenchEntry{
				Name: name, Engine: engine, Workers: workers,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			report.Entries = append(report.Entries, e)
			fmt.Printf("%-24s workers=%-2d  %8.3fms/op  %d allocs/op\n",
				name, workers, float64(e.NsPerOp)/1e6, e.AllocsPerOp)
		}
	}

	// Engine speedup summary: tape vs compiled per base job.
	byName := map[string]serveBenchEntry{}
	for _, e := range report.Entries {
		byName[e.Name] = e
	}
	for _, j := range base {
		c, t := byName[j.name], byName[j.name+"_tape"]
		if c.NsPerOp > 0 {
			fmt.Printf("%-24s compiled speedup over tape: %.2fx\n", j.name, float64(t.NsPerOp)/float64(c.NsPerOp))
		}
	}

	hs, err := runHotSwapBench(m, inst, candidates)
	if err != nil {
		return err
	}
	report.HotSwap = hs
	fmt.Printf("hot-swap: steady p50=%.1fµs p99=%.1fµs | swapping p50=%.1fµs p99=%.1fµs (%d swaps) → p50 ratio %.2fx\n",
		hs.SteadyP50Us, hs.SteadyP99Us, hs.SwappingP50A, hs.SwappingP99A, hs.Swaps, hs.P50Ratio)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// runHotSwapBench measures per-request top-K latency twice on one warmed
// engine — steady state, then with a background publisher hot-swapping model
// clones every 2ms — and reports the percentile shift. The acceptance bar
// for the RCU snapshot design is on absolute swapping p50 (EXPERIMENTS.md):
// compiled serving shrank the steady-state denominator 2.5×, so the ratio
// alone overstates the swap cost.
func runHotSwapBench(m *core.Model, inst feature.Instance, candidates []int) (swapBenchEntry, error) {
	const requests = 300
	eng := serve.NewEngine(m, serve.Config{})
	defer eng.Close()
	req := serve.TopKRequest{Base: inst, Candidates: candidates, K: 10}
	for i := 0; i < 3; i++ { // warm caches and tape pool
		_ = eng.TopK(req)
	}

	measure := func() []time.Duration {
		lat := make([]time.Duration, requests)
		for i := range lat {
			start := time.Now()
			_ = eng.TopK(req)
			lat[i] = time.Since(start)
		}
		return lat
	}

	steady := measure()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cur := m
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			next := cur.Clone()
			next.Params()[0].Value.Data[0] += 1e-9
			eng.Swap(next)
			cur = next
		}
	}()
	swapsBefore := eng.Stats().Swaps
	swapping := measure()
	swaps := eng.Stats().Swaps - swapsBefore
	close(stop)
	<-done

	e := swapBenchEntry{
		Requests:     requests,
		Swaps:        swaps,
		SteadyP50Us:  pctUs(steady, 0.50),
		SteadyP99Us:  pctUs(steady, 0.99),
		SwappingP50A: pctUs(swapping, 0.50),
		SwappingP99A: pctUs(swapping, 0.99),
	}
	if e.SteadyP50Us > 0 {
		e.P50Ratio = e.SwappingP50A / e.SteadyP50Us
	}
	return e, nil
}
