// Command seqfm-bench regenerates the paper's evaluation tables and figures
// on the synthetic stand-in datasets, and benchmarks the training and
// serving engines.
//
// Usage:
//
//	seqfm-bench -exp table2 -scale small
//	seqfm-bench -exp all   -scale tiny
//	seqfm-bench -mode train -out BENCH_train.json
//	seqfm-bench -mode serve -out BENCH_serve.json
//	seqfm-bench -mode index -out BENCH_index.json
//
// In the default -mode paper, experiments are: table1 (dataset statistics),
// table2 (ranking), table3 (classification), table4 (regression), table5
// (ablations), figure3 (hyperparameter sensitivity), figure4 (scalability),
// all. Scales: tiny (seconds), small (minutes, default), medium, full (paper
// sizes; hours of CPU).
//
// -mode train benchmarks one training epoch per task — the legacy
// per-candidate engine, the candidate-sharing sharded tape engine and the
// compiled plan engine at Negatives ∈ {1, 5, 10}, plus classification and
// regression — and writes the ns/op and allocs/op per task to a JSON file
// (default BENCH_train.json) so successive PRs leave a comparable perf
// trajectory. -quick restricts it to the tape-vs-compiled ranking pair at
// Negatives=5, the CI smoke configuration.
//
// -mode serve benchmarks the inference engine on the fixed serving workload
// (serve.BenchWorkload, identical to bench_test.go's BenchmarkServe* suite):
// cold and warm top-K at J=100, the mixed batch-score path, and the
// hot-swap-under-load scenario — top-K latency percentiles while a
// background publisher swaps model generations — writing BENCH_serve.json.
//
// -mode index benchmarks the candidate-retrieval subsystem: HNSW build
// time, query throughput, latency percentiles and recall@100 against the
// exact flat scan at 10k/100k/1M synthetic items across the efSearch
// sweep, plus the end-to-end scenario — Engine.Recommend (retrieve 1000
// from a 100k-object catalog + exact re-rank) against brute-force TopK
// over every object — writing BENCH_index.json.
//
// -mode wal benchmarks the durability subsystem: WAL ingest throughput
// under each fsync policy (per-event fsync vs group commit vs none — the
// group-commit economics), recovery-replay throughput with and without a
// covering snapshot, and follower catch-up speed — writing BENCH_wal.json.
//
// -mode traffic drives the assembled serving stack (experiment tier with a
// seqfm arm and an FM baseline arm, online learner, bounded admission) with
// the open-loop load generator (internal/traffic): per-endpoint latency
// percentiles at fixed offered rates, the maximum sustainable rate under
// the shed/p99 SLO via a geometric-ramp + bisection search, and a 2×
// overload run verifying explicit 429/503 shedding with a bounded admitted
// p99 — writing BENCH_traffic.json. It also scrapes the server's own
// /metrics after the uncontended run and cross-checks the series against
// the harness-observed counts and percentiles.
//
// -mode cluster benchmarks the sharded deployment layer: top-K read p50
// through the consistent-hash router tier versus hitting the owning shard
// directly (the hop overhead), failover time from killing a shard primary to
// the first feedback write the router accepts again (promotion via
// /v1/replica/promote plus map repoint plus fence-and-retry), and recovery
// of a 100k-event stream from the full log versus the state checkpoint +
// compacted suffix — writing BENCH_cluster.json.
//
// -mode obs is the telemetry overhead guard: the warm single-worker top-K
// p50 bare versus through the full per-request instrumentation (trace,
// stage histogram, request counter), plus ns/op and allocs/op of the hot
// recording path alone — writing BENCH_obs.json. CI fails the build when
// the p50 ratio exceeds 1.05 or the recording path allocates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"seqfm/internal/data"
	"seqfm/internal/experiments"
	"seqfm/internal/train"
)

func main() {
	var (
		mode    = flag.String("mode", "paper", "mode: paper (tables/figures) | train | serve | index | wal | traffic | obs | cluster (engine benchmarks)")
		exp     = flag.String("exp", "all", "experiment: table1|table2|table3|table4|table5|figure3|figure4|all")
		scale   = flag.String("scale", "small", "scale: tiny|small|medium|full")
		seed    = flag.Int64("seed", 7, "master random seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		out     = flag.String("out", "BENCH_train.json", "output path for -mode train results")
		quick   = flag.Bool("quick", false, "-mode train: only the tape-vs-compiled ranking pair at neg=5 (CI smoke)")
	)
	flag.Parse()

	switch *mode {
	case "train", "serve", "index", "wal", "traffic", "obs", "cluster":
		// The engine benchmarks measure fixed workloads (see
		// train.BenchWorkload and serve.BenchWorkload) so successive
		// BENCH_*.json files stay diffable; tell the user if they tried to
		// vary them.
		outSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "out" {
				outSet = true
			}
			if f.Name == "seed" || f.Name == "workers" || f.Name == "scale" || f.Name == "exp" {
				fmt.Fprintf(os.Stderr,
					"seqfm-bench: -%s is ignored in -mode %s (fixed benchmark workload)\n", f.Name, *mode)
			}
		})
		outPath := *out
		bench := func(p string) error { return runTrainBench(p, *quick) }
		switch *mode {
		case "serve":
			bench = runServeBench
			if !outSet { // redirect only the train-oriented default, never an explicit -out
				outPath = "BENCH_serve.json"
			}
		case "index":
			bench = runIndexBench
			if !outSet {
				outPath = "BENCH_index.json"
			}
		case "wal":
			bench = runWALBench
			if !outSet {
				outPath = "BENCH_wal.json"
			}
		case "traffic":
			bench = runTrafficBench
			if !outSet {
				outPath = "BENCH_traffic.json"
			}
		case "obs":
			bench = runObsBench
			if !outSet {
				outPath = "BENCH_obs.json"
			}
		case "cluster":
			bench = runClusterBench
			if !outSet {
				outPath = "BENCH_cluster.json"
			}
		}
		if err := bench(outPath); err != nil {
			fmt.Fprintf(os.Stderr, "seqfm-bench: %v\n", err)
			os.Exit(1)
		}
		return
	case "paper":
	default:
		fmt.Fprintf(os.Stderr, "seqfm-bench: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	p := experiments.ParamsFor(experiments.Scale(*scale))
	p.Seed = *seed
	p.Workers = *workers

	runs := strings.Split(*exp, ",")
	if *exp == "all" {
		runs = []string{"table1", "table2", "table3", "table4", "table5", "figure3", "figure4"}
	}

	outW := os.Stdout
	for _, r := range runs {
		start := time.Now()
		var err error
		switch strings.TrimSpace(r) {
		case "table1":
			_, err = experiments.Table1(outW, p)
		case "table2":
			_, err = experiments.Table2(outW, p)
		case "table3":
			_, err = experiments.Table3(outW, p)
		case "table4":
			_, err = experiments.Table4(outW, p)
		case "table5":
			_, err = experiments.Table5(outW, p)
		case "figure3":
			_, err = experiments.Figure3(outW, p, experiments.Figure3Values{})
		case "figure4":
			_, err = experiments.Figure4(outW, p)
		default:
			err = fmt.Errorf("unknown experiment %q", r)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqfm-bench: %s: %v\n", r, err)
			os.Exit(1)
		}
		fmt.Fprintf(outW, "  (%s completed in %.1fs)\n\n", r, time.Since(start).Seconds())
	}
}

// trainBenchEntry is one measured configuration of a one-epoch training run.
type trainBenchEntry struct {
	Task        string  `json:"task"`
	Engine      string  `json:"engine"` // "legacy", "engine" (sharded tape) or "compiled" (plan)
	Negatives   int     `json:"negatives"`
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SecPerEpoch float64 `json:"sec_per_epoch"`
}

// trainBenchReport is the BENCH_train.json schema.
type trainBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Dataset     string            `json:"dataset"`
	Model       string            `json:"model"`
	Entries     []trainBenchEntry `json:"entries"`
}

// runTrainBench measures the exact workload of bench_test.go's
// BenchmarkTrain* suite (train.BenchWorkload/BenchConfig): one epoch per op,
// single worker, so the emitted numbers isolate the per-instance algorithmic
// cost from parallel fan-out and stay comparable to the go-test output.
// quick restricts the job list to the tape-vs-compiled ranking pair at
// Negatives=5, which is what CI's perf-smoke step measures.
func runTrainBench(outPath string, quick bool) error {
	// The JSON engine labels map onto train.Config.Engine: "compiled" is the
	// plan engine, "engine" (the sharded tape) and "legacy" run on the tape.
	cfg := func(negatives int, engine string) train.Config {
		c := train.BenchConfig(negatives, 1)
		if engine == "compiled" {
			c.Engine = train.EngineCompiled
		}
		return c
	}

	// Each job gets a freshly initialised model (like bench_test.go's
	// sub-benchmarks): testing.Benchmark auto-calibrates its iteration
	// count, so a shared model would enter later jobs with a
	// machine-dependent number of absorbed epochs and the emitted numbers
	// would not be a reproducible function of the declared workload.
	type trainFn func(train.Model, *data.Split, train.Config) (*train.History, error)
	type job struct {
		task, engine string
		negatives    int
		fn           trainFn
	}
	var jobs []job
	if quick {
		jobs = []job{
			{"ranking", "engine", 5, train.Ranking},
			{"ranking", "compiled", 5, train.Ranking},
		}
	} else {
		for _, n := range []int{1, 5, 10} {
			jobs = append(jobs,
				job{"ranking", "legacy", n, train.LegacyRanking},
				job{"ranking", "engine", n, train.Ranking},
				job{"ranking", "compiled", n, train.Ranking},
			)
		}
		jobs = append(jobs,
			job{"classification", "engine", 5, train.Classification},
			job{"classification", "compiled", 5, train.Classification},
			job{"regression", "engine", 0, train.Regression},
			job{"regression", "compiled", 0, train.Regression},
		)
	}

	report := trainBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "poi-synth users=16 pois=300 len∈[12,24]",
		Model:       "seqfm d=64 l=1 n.=20",
	}
	for _, j := range jobs {
		m, split, err := train.BenchWorkload()
		if err != nil {
			return err
		}
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := j.fn(m, split, cfg(j.negatives, j.engine)); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return fmt.Errorf("%s/%s neg=%d: %w", j.task, j.engine, j.negatives, benchErr)
		}
		e := trainBenchEntry{
			Task:        j.task,
			Engine:      j.engine,
			Negatives:   j.negatives,
			Workers:     1,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			SecPerEpoch: float64(res.NsPerOp()) / 1e9,
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("%-14s %-6s neg=%-2d  %.3fs/epoch  %d allocs/op\n",
			j.task, j.engine, j.negatives, e.SecPerEpoch, e.AllocsPerOp)
	}

	// Speedup summaries: legacy vs tape engine, and tape vs compiled, per
	// negatives count.
	byKey := map[string]trainBenchEntry{}
	for _, e := range report.Entries {
		byKey[fmt.Sprintf("%s/%s/%d", e.Task, e.Engine, e.Negatives)] = e
	}
	for _, n := range []int{1, 5, 10} {
		l, okL := byKey[fmt.Sprintf("ranking/legacy/%d", n)]
		g, okG := byKey[fmt.Sprintf("ranking/engine/%d", n)]
		c, okC := byKey[fmt.Sprintf("ranking/compiled/%d", n)]
		if okL && okG && g.NsPerOp > 0 {
			fmt.Printf("ranking neg=%-2d engine   speedup over legacy: %.2fx\n", n, float64(l.NsPerOp)/float64(g.NsPerOp))
		}
		if okG && okC && c.NsPerOp > 0 {
			fmt.Printf("ranking neg=%-2d compiled speedup over tape:   %.2fx\n", n, float64(g.NsPerOp)/float64(c.NsPerOp))
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
