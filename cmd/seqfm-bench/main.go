// Command seqfm-bench regenerates the paper's evaluation tables and figures
// on the synthetic stand-in datasets.
//
// Usage:
//
//	seqfm-bench -exp table2 -scale small
//	seqfm-bench -exp all   -scale tiny
//
// Experiments: table1 (dataset statistics), table2 (ranking), table3
// (classification), table4 (regression), table5 (ablations), figure3
// (hyperparameter sensitivity), figure4 (scalability), all.
//
// Scales: tiny (seconds), small (minutes, default), medium, full (paper
// sizes; hours of CPU).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"seqfm/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|table3|table4|table5|figure3|figure4|all")
		scale   = flag.String("scale", "small", "scale: tiny|small|medium|full")
		seed    = flag.Int64("seed", 7, "master random seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	p := experiments.ParamsFor(experiments.Scale(*scale))
	p.Seed = *seed
	p.Workers = *workers

	runs := strings.Split(*exp, ",")
	if *exp == "all" {
		runs = []string{"table1", "table2", "table3", "table4", "table5", "figure3", "figure4"}
	}

	out := os.Stdout
	for _, r := range runs {
		start := time.Now()
		var err error
		switch strings.TrimSpace(r) {
		case "table1":
			_, err = experiments.Table1(out, p)
		case "table2":
			_, err = experiments.Table2(out, p)
		case "table3":
			_, err = experiments.Table3(out, p)
		case "table4":
			_, err = experiments.Table4(out, p)
		case "table5":
			_, err = experiments.Table5(out, p)
		case "figure3":
			_, err = experiments.Figure3(out, p, experiments.Figure3Values{})
		case "figure4":
			_, err = experiments.Figure4(out, p)
		default:
			err = fmt.Errorf("unknown experiment %q", r)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqfm-bench: %s: %v\n", r, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "  (%s completed in %.1fs)\n\n", r, time.Since(start).Seconds())
	}
}
