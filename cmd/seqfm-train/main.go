// Command seqfm-train trains a single model on a single stand-in dataset
// and reports the task's evaluation metrics — the quickest way to compare
// one model against SeqFM on one workload.
//
// Usage:
//
//	seqfm-train -dataset gowalla -model seqfm   -scale small
//	seqfm-train -dataset taobao  -model xdeepfm -epochs 12
//	seqfm-train -dataset beauty  -model rrn
//
// The task (ranking / classification / regression) follows the dataset.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"seqfm/internal/data"
	"seqfm/internal/experiments"
	"seqfm/internal/train"
)

func main() {
	var (
		dataset = flag.String("dataset", "gowalla", "gowalla|foursquare|trivago|taobao|beauty|toys")
		model   = flag.String("model", "seqfm", "model name as in the paper's tables (fm, wide&deep, deepcross, nfm, afm, sasrec, tfm, din, xdeepfm, rrn, hofm, seqfm)")
		scale   = flag.String("scale", "small", "tiny|small|medium|full")
		epochs  = flag.Int("epochs", 0, "override training epochs (0 = scale default)")
		seed    = flag.Int64("seed", 7, "master seed")
		engine  = flag.String("engine", "", "training engine: tape (default; all models) | compiled (plan; seqfm only)")
		verbose = flag.Bool("v", true, "log per-epoch loss")
	)
	flag.Parse()

	p := experiments.ParamsFor(experiments.Scale(*scale))
	p.Seed = *seed
	if *epochs > 0 {
		p.Epochs = *epochs
	}

	if err := run(p, *dataset, *model, *engine, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "seqfm-train:", err)
		os.Exit(1)
	}
}

func run(p experiments.Params, dataset, model, engine string, verbose bool) error {
	ds, err := buildDataset(p, dataset)
	if err != nil {
		return err
	}
	split := data.NewSplit(ds)

	var zoo []experiments.NamedModel
	switch ds.Task {
	case data.Ranking:
		zoo, err = p.RankingModels(ds.Space())
	case data.Classification:
		zoo, err = p.ClassificationModels(ds.Space())
	default:
		zoo, err = p.RegressionModels(ds.Space())
	}
	if err != nil {
		return err
	}
	var m train.Model
	var names []string
	for _, nm := range zoo {
		names = append(names, strings.ToLower(nm.Name))
		if strings.EqualFold(nm.Name, model) {
			m = nm.Model
		}
	}
	if m == nil {
		return fmt.Errorf("model %q not available for %s (have: %s)", model, ds.Task, strings.Join(names, ", "))
	}

	cfg := p.TrainConfig()
	cfg.Engine = engine // "compiled" errors on baselines: only SeqFM has a plan spec
	if verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	fmt.Printf("training %s on %s (%d train / %d val / %d test instances)\n",
		model, ds.Name, len(split.Train), len(split.Val), len(split.Test))

	switch ds.Task {
	case data.Ranking:
		hist, err := train.Ranking(m, split, cfg)
		if err != nil {
			return err
		}
		r := train.EvalRanking(m, split, p.EvalConfig())
		fmt.Printf("trained in %.1fs  HR@5=%.3f HR@10=%.3f HR@20=%.3f NDCG@5=%.3f NDCG@10=%.3f NDCG@20=%.3f\n",
			hist.Total.Seconds(), r.HR[5], r.HR[10], r.HR[20], r.NDCG[5], r.NDCG[10], r.NDCG[20])
	case data.Classification:
		hist, err := train.Classification(m, split, cfg)
		if err != nil {
			return err
		}
		r := train.EvalClassification(m, split, p.EvalConfig())
		fmt.Printf("trained in %.1fs  AUC=%.3f RMSE=%.3f\n", hist.Total.Seconds(), r.AUC, r.RMSE)
	default:
		hist, err := train.Regression(m, split, cfg)
		if err != nil {
			return err
		}
		r := train.EvalRegression(m, split, p.EvalConfig())
		fmt.Printf("trained in %.1fs  MAE=%.3f RRSE=%.3f\n", hist.Total.Seconds(), r.MAE, r.RRSE)
	}
	return nil
}

func buildDataset(p experiments.Params, name string) (*data.Dataset, error) {
	switch name {
	case "gowalla":
		g, _, err := p.RankingDatasets()
		return g, err
	case "foursquare":
		_, f, err := p.RankingDatasets()
		return f, err
	case "trivago":
		tv, _, err := p.CTRDatasets()
		return tv, err
	case "taobao":
		_, tb, err := p.CTRDatasets()
		return tb, err
	case "beauty":
		be, _, err := p.RatingDatasets()
		return be, err
	case "toys":
		_, to, err := p.RatingDatasets()
		return to, err
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}
