// Command seqfm-data generates the synthetic stand-in datasets and prints
// their Table I statistics plus a few example user transactions, so the
// generated sequential structure can be inspected by eye.
//
// Usage:
//
//	seqfm-data -dataset gowalla -scale 0.01 -show 3
package main

import (
	"flag"
	"fmt"
	"os"

	"seqfm/internal/data"
)

func main() {
	var (
		name  = flag.String("dataset", "all", "gowalla|foursquare|trivago|taobao|beauty|toys|all")
		scale = flag.Float64("scale", 0.01, "fraction of the paper's Table I sizes")
		seed  = flag.Int64("seed", 7, "generator seed")
		show  = flag.Int("show", 2, "example user transactions to print per dataset")
	)
	flag.Parse()

	sets, err := build(*name, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqfm-data:", err)
		os.Exit(1)
	}

	var stats []data.Stats
	for _, d := range sets {
		stats = append(stats, data.ComputeStats(d))
	}
	fmt.Print(data.FormatStatsTable(stats))

	for _, d := range sets {
		fmt.Printf("\n%s example transactions:\n", d.Name)
		byLen := data.SortUsersByLength(d)
		for i := 0; i < *show && i < len(byLen); i++ {
			u := byLen[i]
			log := d.Users[u]
			fmt.Printf("  user %d (%d interactions):", u, len(log))
			for j, it := range log {
				if j >= 15 {
					fmt.Printf(" …")
					break
				}
				if d.Task == data.Regression {
					fmt.Printf(" %d:%.0f", it.Object, it.Rating)
				} else {
					fmt.Printf(" %d", it.Object)
				}
			}
			fmt.Println()
		}
	}
}

func build(name string, scale float64, seed int64) ([]*data.Dataset, error) {
	gen := map[string]func() (*data.Dataset, error){
		"gowalla":    func() (*data.Dataset, error) { return data.GeneratePOI(data.GowallaConfig(scale, seed)) },
		"foursquare": func() (*data.Dataset, error) { return data.GeneratePOI(data.FoursquareConfig(scale, seed)) },
		"trivago":    func() (*data.Dataset, error) { return data.GenerateCTR(data.TrivagoConfig(scale, seed)) },
		"taobao":     func() (*data.Dataset, error) { return data.GenerateCTR(data.TaobaoConfig(scale, seed)) },
		"beauty":     func() (*data.Dataset, error) { return data.GenerateRating(data.BeautyConfig(scale, seed)) },
		"toys":       func() (*data.Dataset, error) { return data.GenerateRating(data.ToysConfig(scale, seed)) },
	}
	if name == "all" {
		var out []*data.Dataset
		for _, n := range []string{"gowalla", "foursquare", "trivago", "taobao", "beauty", "toys"} {
			d, err := gen[n]()
			if err != nil {
				return nil, err
			}
			out = append(out, d)
		}
		return out, nil
	}
	g, ok := gen[name]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
	d, err := g()
	if err != nil {
		return nil, err
	}
	return []*data.Dataset{d}, nil
}
