package seqfm

import (
	"io"

	"seqfm/internal/ckpt"
	"seqfm/internal/online"
	"seqfm/internal/train"
)

// OnlineLearner is the online-learning subsystem (internal/online): it closes
// the train→serve loop at runtime. Ingested interactions extend a sharded
// live history store immediately, a background trainer fine-tunes a shadow
// clone of the model on the event stream through the sharded training engine,
// and each round's result is hot-swapped into the serving Engine as a new
// immutable generation — readers never block, in-flight requests finish on
// the generation they started with.
//
//	eng := seqfm.NewEngine(model, seqfm.EngineConfig{})
//	learner, _ := seqfm.NewOnlineLearner(model, ds, eng, seqfm.OnlineConfig{})
//	learner.Start()
//	defer learner.Close()
//	learner.Ingest(user, object, 1)        // stream interactions
//	items, _ := learner.TopK(user, cands, 10) // ranked on the live history
//
// See DESIGN.md §7 for the snapshot/swap protocol and the staleness and
// determinism contracts.
type OnlineLearner = online.Learner

// OnlineConfig parameterises NewOnlineLearner; the zero value takes every
// default (64-event minibatches, 250ms background cadence, histories bounded
// at 4× the model's MaxSeqLen).
type OnlineConfig = online.Config

// OnlineStats is a snapshot of an OnlineLearner's counters.
type OnlineStats = online.Stats

// HistoryStore is the sharded, lock-striped live per-user history map behind
// an OnlineLearner.
type HistoryStore = online.HistoryStore

// NewOnlineLearner builds a learner that fine-tunes a shadow clone of m on
// ingested events (with ds's task-appropriate loss) and publishes snapshots
// to eng. m itself is never mutated.
func NewOnlineLearner(m *Model, ds *Dataset, eng *Engine, cfg OnlineConfig) (*OnlineLearner, error) {
	return online.NewLearner(m, ds, eng, cfg)
}

// NewOnlineLearnerFromCheckpoint restores model, optimizer state and step
// counter from a ckpt-v2 stream (see (*OnlineLearner).Checkpoint) and
// resumes fine-tuning bit-identically to the run that wrote it.
func NewOnlineLearnerFromCheckpoint(r io.Reader, ds *Dataset, eng *Engine, cfg OnlineConfig) (*OnlineLearner, error) {
	return online.NewLearnerFromCheckpoint(r, ds, eng, cfg)
}

// NewHistoryStore builds a standalone live history store (shards rounded up
// to a power of two; <= 0 picks the default) keeping at most maxLen objects
// per user.
func NewHistoryStore(shards, maxLen int) *HistoryStore {
	return online.NewHistoryStore(shards, maxLen)
}

// Stepper is the incremental face of the training engine: one caller-supplied
// minibatch per Step, with restart-exact random streams so a run restored
// from a checkpoint continues bit-identically. OnlineLearner drives one
// internally; use it directly for custom streaming pipelines.
type Stepper = train.Stepper

// NewStepper builds an incremental trainer for m with the task-appropriate
// loss. Pass a nil optimizer for a fresh Adam at cfg.LR.
func NewStepper(m Scorer, ds *Dataset, task Task, cfg TrainConfig) (*Stepper, error) {
	return train.NewStepper(m, ds, task, nil, cfg)
}

// SaveCheckpoint writes m as a self-describing ckpt-v2 stream: magic header,
// model configuration and every parameter, so LoadCheckpoint reconstructs
// the model with no prior knowledge of its shape. (*OnlineLearner).Checkpoint
// additionally embeds the optimizer state and step counter.
func SaveCheckpoint(w io.Writer, m *Model) error {
	return ckpt.Save(w, m, nil, 0)
}

// LoadCheckpoint reads a ckpt-v2 stream and rebuilds the model it describes.
// Legacy v1 streams (weights only) are rejected; load those with
// (*Model).Load into a model built with the matching Config.
func LoadCheckpoint(r io.Reader) (*Model, error) {
	m, _, err := ckpt.Load(r)
	return m, err
}
