package seqfm

import "seqfm/internal/serve"

// Engine is the batched inference engine (internal/serve): a serving-side
// counterpart to the trainers that pools pre-sized autodiff tapes across
// requests, caches the candidate-independent dynamic view per history and
// the static view per (user, candidate, attrs), fans batches out over a
// worker pool, and micro-batches concurrent single-instance requests. All
// engine paths return scores bit-for-bit identical to per-instance Score.
//
// Typical top-K serving:
//
//	eng := seqfm.NewEngine(model, seqfm.EngineConfig{})
//	defer eng.Close()
//	items := eng.TopK(seqfm.TopKRequest{
//		Base:       seqfm.Instance{User: u, Hist: hist},
//		Candidates: candidates,
//		K:          10,
//	})
type Engine = serve.Engine

// EngineConfig parameterises NewEngine; the zero value takes every default
// (GOMAXPROCS workers, bounded LRU caches, 64-instance micro-batches).
type EngineConfig = serve.Config

// CachePolicy selects the engine caches' eviction discipline.
type CachePolicy = serve.CachePolicy

// The cache policies: LRU (default — touch-on-hit keeps hot entries resident
// under skewed top-K traffic) and FIFO (the measured legacy baseline).
const (
	CacheLRU  = serve.CacheLRU
	CacheFIFO = serve.CacheFIFO
)

// EngineStats is a snapshot of an Engine's traffic and cache counters.
type EngineStats = serve.Stats

// TopKRequest asks an Engine for the K best candidates for one user context.
type TopKRequest = serve.TopKRequest

// Item is one scored candidate returned by (*Engine).TopK.
type Item = serve.Item

// NewEngine builds an inference engine over a model snapshot. SeqFM models
// get the fully cached scoring path; baseline models (any Scorer) still get
// tape reuse and parallel fan-out. The weights of the served model must stay
// immutable while a generation serves them — to deploy new weights, publish
// a clone with (*Engine).Swap (zero-downtime, non-blocking; see the online
// subsystem), or call (*Engine).InvalidateCaches after an in-place update.
func NewEngine(m Scorer, cfg EngineConfig) *Engine { return serve.NewEngine(m, cfg) }
