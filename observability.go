package seqfm

// Observability facade over internal/obs: the dependency-free telemetry
// registry behind GET /metrics, the per-request trace the serving stack
// threads through context, and the slow-request exemplar ring behind
// GET /v1/debug/slow. A Server builds and wires all of this on its own —
// these exports are for embedders that want to add families to the same
// registry, scrape it programmatically, or trace their own request paths.

import (
	"context"
	"io"

	"seqfm/internal/obs"
	"seqfm/internal/online"
	"seqfm/internal/serve"
)

// MetricsRegistry is an ordered collection of metric families with
// Prometheus text exposition (format 0.0.4). Counters, gauges and latency
// histograms register either as live instruments (the hot path records into
// them) or as scrape-time callbacks over existing stats snapshots.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry. Pass it as
// ServerConfig.Registry to share one exposition surface between the server's
// families and your own.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Counter and Gauge are the registry's scalar instruments; LatencyHist (the
// log-bucketed histogram, also behind LatencySnapshot) is its third kind.
// The Vec forms are labeled families whose children are resolved once at
// wiring time (With/Attach) so hot-path recording stays allocation-free.
type (
	Counter      = obs.Counter
	Gauge        = obs.Gauge
	CounterVec   = obs.CounterVec
	GaugeVec     = obs.GaugeVec
	HistogramVec = obs.HistogramVec
)

// Trace accumulates one request's stage spans (admission wait, retrieve,
// re-rank, WAL append, durability wait, ...). The serving stack opens one
// per request and carries it via context; every Trace method is nil-receiver
// safe, so layers record unconditionally.
type Trace = obs.Trace

// StageSpan is one completed stage on a Trace.
type StageSpan = obs.StageSpan

// NewTrace opens a trace for one request; sink (may be nil) receives every
// stage duration under its stage label.
func NewTrace(endpoint string, sink *HistogramVec) *Trace { return obs.NewTrace(endpoint, sink) }

// WithTrace returns ctx carrying tr; TraceFromContext returns the carried
// trace or nil (safe to record through either way).
func WithTrace(ctx context.Context, tr *Trace) context.Context { return obs.WithTrace(ctx, tr) }

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace { return obs.FromContext(ctx) }

// SlowRing keeps the most recent requests that crossed a latency threshold;
// SlowEntry is one kept exemplar with its stage breakdown.
type (
	SlowRing  = obs.SlowRing
	SlowEntry = obs.SlowEntry
)

// MetricSample is one parsed exposition line; MetricSamples is a parsed
// scrape with label-subset lookup helpers (Value, SumValues).
type (
	MetricSample  = obs.Sample
	MetricSamples = obs.Samples
)

// ParseMetrics reads Prometheus text exposition back into samples — the
// scanner the traffic bench uses to cross-check the server's own series
// against harness-observed counts and percentiles.
func ParseMetrics(r io.Reader) (MetricSamples, error) { return obs.ParsePrometheus(r) }

// ScoreSketch is a streaming quantile sketch of served scores: fixed linear
// buckets, atomics-only recording. The engine keeps one per published model
// generation; ScoreDrift summarises the shift between two generations'
// sketches (median shift, mean shift, total variation distance) — the signal
// behind the seqfm_score_drift gauges and drift alert rules.
type (
	ScoreSketch = obs.ScoreSketch
	ScoreDrift  = obs.ScoreDrift
)

// DriftStats is an engine's current-vs-previous-generation drift report;
// Known is false until both generations have recorded scores.
type DriftStats = serve.DriftStats

// ModelLineage is one published generation's provenance entry: when it was
// published and how fresh its training data was, all derived from
// primary-clock stamps carried through the WAL (identical on a follower).
type ModelLineage = online.LineageEntry

// AlertRule is one declarative alert: fire when `metric{labels} op threshold`
// holds continuously for the sustain window. Pass rules via
// ServerConfig.Rules — firing critical rules degrade /healthz to 503, and
// rules carrying an "arm" label mark that experiment arm sick. AlertRuleState
// is one rule's evaluation result; AlertRules is the eval-on-read evaluator.
type (
	AlertRule      = obs.Rule
	AlertRuleState = obs.RuleState
	AlertRules     = obs.Rules
)

// Alert severities: critical degrades readiness while firing, warn only
// reports.
const (
	AlertSeverityWarn     = obs.SeverityWarn
	AlertSeverityCritical = obs.SeverityCritical
)

// NewAlertRules wires rules against reg, rejecting the set on the first
// malformed rule. Servers do this themselves for ServerConfig.Rules; use it
// directly to evaluate rules over your own registry.
func NewAlertRules(reg *MetricsRegistry, rules []AlertRule) (*AlertRules, error) {
	return obs.NewRules(reg, rules)
}

// LoadAlertRules reads rules from a JSON file (a bare array or an object
// with a "rules" array) — the format behind seqfm-serve's -alert-rules flag.
func LoadAlertRules(path string) ([]AlertRule, error) { return obs.LoadRulesFile(path) }
