// Rating prediction (paper §IV-C): train SeqFM as a regressor over a
// user's rated-item sequence, compare it against the plain-FM ablation
// family, and print a per-user prediction trace — the regression scenario
// of the paper's Table IV.
//
//	go run ./examples/rating
package main

import (
	"fmt"
	"log"

	"seqfm"
)

func main() {
	ds, err := seqfm.GenerateRating(seqfm.BeautyConfig(0.002, 31))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(seqfm.ComputeStats(ds))
	split := seqfm.NewSplit(ds)

	// Train the full model and the paper's Table V "Remove DV" ablation to
	// show what the sequential dynamic view is worth on this task.
	variants := []struct {
		name string
		ab   seqfm.Ablation
	}{
		{"SeqFM (default)", seqfm.Ablation{}},
		{"SeqFM remove DV", seqfm.Ablation{NoDynamicView: true}},
	}
	for _, v := range variants {
		cfg := seqfm.DefaultConfig(ds.Space())
		cfg.Dim = 16
		cfg.MaxSeqLen = 8
		cfg.Ablation = v.ab
		model, err := seqfm.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := seqfm.TrainRegression(model, split, seqfm.TrainConfig{
			Epochs: 25, BatchSize: 64, LR: 3e-3,
		}); err != nil {
			log.Fatal(err)
		}
		r := seqfm.EvalRegression(model, split, seqfm.EvalConfig{})
		fmt.Printf("%-18s MAE=%.3f RRSE=%.3f\n", v.name, r.MAE, r.RRSE)

		if v.ab == (seqfm.Ablation{}) {
			// Trace a user's held-out prediction with the full model.
			inst := split.Test[0]
			fmt.Printf("  user %d rated %d items; true rating of item %d = %.0f, predicted = %.2f\n",
				inst.User, len(inst.Hist), inst.Target, inst.Label, seqfm.Score(model, inst))
		}
	}
}
