// Online learning: ingest a simulated preference-drift stream and watch the
// ranking metric recover after the background fine-tuner hot-swaps fresh
// weights into the serving engine — the train→serve loop closed at runtime.
//
// The scenario: a SeqFM is trained offline on a synthetic check-in log, then
// user behaviour drifts — every user suddenly favours a small set of newly
// "trending" POIs the offline model has no reason to rank highly. Each
// simulated event is first ranked prequentially (predict, then learn): the
// true next POI competes against sampled candidates on the live serving
// engine, and only afterwards is the event ingested. Between windows the
// learner drains the stream, fine-tunes its shadow model and publishes a new
// generation, so HR@10 climbs window over window while the engine keeps
// serving without a pause.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"
	"math/rand"

	"seqfm"
)

func main() {
	// 1. Offline phase: dataset + base model, exactly like the quickstart.
	ds, err := seqfm.GeneratePOI(seqfm.GowallaConfig(0.003, 42))
	if err != nil {
		log.Fatal(err)
	}
	split := seqfm.NewSplit(ds)
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim = 16
	cfg.MaxSeqLen = 8
	model, err := seqfm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := seqfm.TrainRanking(model, split, seqfm.TrainConfig{
		Epochs: 8, BatchSize: 64, LR: 3e-3, Negatives: 2, Workers: 1, Seed: 1,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline model trained on %s (%d users, %d POIs)\n",
		ds.Name, ds.NumUsers, ds.NumObjects)

	// 2. Live phase: serving engine + online learner over it.
	eng := seqfm.NewEngine(model, seqfm.EngineConfig{Workers: 1})
	defer eng.Close()
	learner, err := seqfm.NewOnlineLearner(model, ds, eng, seqfm.OnlineConfig{
		Train:     seqfm.TrainConfig{Seed: 9, Workers: 1, LR: 1e-2, Negatives: 2},
		BatchSize: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer learner.Close()

	// 3. The drift: from now on users check in almost exclusively at a few
	//    trending POIs the offline log barely contains.
	trending := []int{3, ds.NumObjects / 2, ds.NumObjects - 4}
	fmt.Printf("preference drift: all users now favour POIs %v\n\n", trending)

	const (
		windows        = 6
		eventsPerWin   = 120
		rankCandidates = 30
		k              = 10
	)
	rng := rand.New(rand.NewSource(7))
	fmt.Printf("%-8s %-8s %-12s %-10s\n", "window", "HR@10", "generation", "steps")
	for w := 0; w < windows; w++ {
		hits := 0
		for e := 0; e < eventsPerWin; e++ {
			user := rng.Intn(ds.NumUsers)
			target := trending[rng.Intn(len(trending))]

			// Predict first: rank the true next POI against sampled rivals
			// on the user's live history (dataset log + ingested events).
			candidates := make([]int, 0, rankCandidates)
			candidates = append(candidates, target)
			for len(candidates) < rankCandidates {
				c := rng.Intn(ds.NumObjects)
				if c != target {
					candidates = append(candidates, c)
				}
			}
			items, err := learner.TopK(user, candidates, k)
			if err != nil {
				log.Fatal(err)
			}
			for _, item := range items {
				if item.Object == target {
					hits++
					break
				}
			}

			// Then learn from it.
			if err := learner.Ingest(user, target, 1); err != nil {
				log.Fatal(err)
			}
		}
		// Drain the window's events, fine-tune the shadow model, hot-swap.
		// (learner.Start() does this on a timer; the explicit Sync keeps the
		// example deterministic.)
		learner.Sync()
		st := learner.Stats()
		fmt.Printf("%-8d %-8.3f %-12d %-10d\n",
			w+1, float64(hits)/float64(eventsPerWin), st.Generation, st.Steps)
	}
	st := learner.Stats()
	fmt.Printf("\n%d events ingested, %d fine-tune steps, %d hot swaps, last loss %.4f\n",
		st.Ingested, st.Steps, st.Swaps, st.LastLoss)
	fmt.Println("HR@10 in window 1 is the frozen offline model; later windows are served")
	fmt.Println("by hot-swapped generations fine-tuned on the drifted stream.")
}
