// Quickstart: build a dataset, train SeqFM, evaluate — the minimal
// end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seqfm"
)

func main() {
	// 1. A synthetic POI check-in dataset (Gowalla stand-in) at 0.3% of the
	//    paper's scale so this example finishes in seconds.
	ds, err := seqfm.GeneratePOI(seqfm.GowallaConfig(0.003, 42))
	if err != nil {
		log.Fatal(err)
	}
	stats := seqfm.ComputeStats(ds)
	fmt.Println(stats)

	// 2. Leave-one-out split: per user, last interaction → test, second
	//    last → validation, rest → train (paper §V-C).
	split := seqfm.NewSplit(ds)
	fmt.Printf("train=%d val=%d test=%d instances\n",
		len(split.Train), len(split.Val), len(split.Test))

	// 3. SeqFM with small hyperparameters; DefaultConfig carries the
	//    paper's {d=64, l=1, n.=20, ρ=0.6}.
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim = 16
	cfg.MaxSeqLen = 10
	model, err := seqfm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SeqFM with %d parameters\n", model.NumParams())

	// 4. Train with the BPR ranking loss (paper Eq. 21).
	hist, err := seqfm.TrainRanking(model, split, seqfm.TrainConfig{
		Epochs: 12, BatchSize: 64, LR: 3e-3, Negatives: 2,
		Logf: func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %.1fs\n", hist.Total.Seconds())

	// 5. Evaluate: rank each held-out POI against 100 unvisited negatives.
	r := seqfm.EvalRanking(model, split, seqfm.EvalConfig{J: 100})
	fmt.Printf("HR@5=%.3f HR@10=%.3f HR@20=%.3f NDCG@10=%.3f\n",
		r.HR[5], r.HR[10], r.HR[20], r.NDCG[10])

	// 6. Score an individual (user, candidate, history) case.
	inst := split.Test[0]
	fmt.Printf("user %d, candidate %d, |history|=%d → score %.3f\n",
		inst.User, inst.Target, len(inst.Hist), seqfm.Score(model, inst))
}
