// Click-through-rate prediction (paper §IV-B): train SeqFM as a binary
// classifier over (user, link) pairs with sampled negatives, evaluate AUC,
// and inspect how the predicted click probability for the same candidate
// changes as the user's click sequence evolves — the sequence-awareness the
// paper's title promises.
//
//	go run ./examples/ctr
package main

import (
	"fmt"
	"log"
	"math"

	"seqfm"
)

func main() {
	ds, err := seqfm.GenerateCTR(seqfm.TaobaoConfig(0.0015, 23))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(seqfm.ComputeStats(ds))

	split := seqfm.NewSplit(ds)
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim = 16
	cfg.MaxSeqLen = 10
	model, err := seqfm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := seqfm.TrainClassification(model, split, seqfm.TrainConfig{
		Epochs: 10, BatchSize: 64, LR: 3e-3, Negatives: 3,
	}); err != nil {
		log.Fatal(err)
	}

	r := seqfm.EvalClassification(model, split, seqfm.EvalConfig{})
	fmt.Printf("CTR evaluation: AUC=%.3f RMSE=%.3f\n", r.AUC, r.RMSE)

	// Sequence-awareness in action: the same (user, link) pair scored
	// against growing history prefixes. A set-category model would produce
	// the same probability for any permutation of the history; SeqFM's
	// causal dynamic view makes the estimate evolve with the sequence.
	inst := split.Test[0]
	fmt.Printf("user %d, candidate link %d — click probability vs history length:\n",
		inst.User, inst.Target)
	for _, n := range []int{0, 2, 4, 8, len(inst.Hist)} {
		if n > len(inst.Hist) {
			continue
		}
		prefix := inst
		prefix.Hist = inst.Hist[:n]
		p := sigmoid(seqfm.Score(model, prefix))
		fmt.Printf("  |history|=%2d → p(click)=%.3f\n", n, p)
	}

	// And order sensitivity: reverse the history. Set-category baselines
	// cannot distinguish these two inputs.
	rev := inst
	rev.Hist = reversed(inst.Hist)
	fmt.Printf("p(click) chronological=%.4f reversed=%.4f (difference = sequence signal)\n",
		sigmoid(seqfm.Score(model, inst)), sigmoid(seqfm.Score(model, rev)))
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func reversed(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}
