// Next-POI recommendation (paper §IV-A): build a Dataset from raw check-in
// events the way a downstream user would with their own logs, train SeqFM
// with the BPR loss, and produce a personalised top-K POI ranking for a
// user — the paper's Figure 1 scenario, where the model must understand
// that a user who just bought a computer wants accessories, not more
// clothes.
//
//	go run ./examples/nextpoi
package main

import (
	"fmt"
	"log"
	"sort"

	"seqfm"
)

// checkin is a raw event as an application would log it.
type checkin struct {
	user, poi int
	ts        int64
}

func main() {
	// Synthesise "application logs" from the Foursquare stand-in, then
	// rebuild a Dataset from the raw events — demonstrating ingestion.
	src, err := seqfm.GeneratePOI(seqfm.FoursquareConfig(0.003, 11))
	if err != nil {
		log.Fatal(err)
	}
	var events []checkin
	for u, logRows := range src.Users {
		for _, it := range logRows {
			events = append(events, checkin{user: u, poi: it.Object, ts: it.Time})
		}
	}
	fmt.Printf("ingesting %d raw check-in events\n", len(events))

	ds := datasetFromEvents(events, src.NumUsers, src.NumObjects)

	// Paper preprocessing: drop users with <10 interactions and POIs with
	// <10 visitors (§V-A).
	ds = seqfm.FilterInactive(ds, 10, 2)
	fmt.Println(seqfm.ComputeStats(ds))

	split := seqfm.NewSplit(ds)
	cfg := seqfm.DefaultConfig(ds.Space())
	cfg.Dim = 16
	cfg.MaxSeqLen = 10
	model, err := seqfm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := seqfm.TrainRanking(model, split, seqfm.TrainConfig{
		Epochs: 12, BatchSize: 64, LR: 3e-3, Negatives: 2,
	}); err != nil {
		log.Fatal(err)
	}

	r := seqfm.EvalRanking(model, split, seqfm.EvalConfig{J: 100})
	fmt.Printf("leave-one-out: HR@10=%.3f NDCG@10=%.3f\n", r.HR[10], r.NDCG[10])

	// Top-K recommendation for one user: score every POI given the user's
	// full history and rank.
	user := 0
	hist := make([]int, 0, len(ds.Users[user]))
	seen := map[int]bool{}
	for _, it := range ds.Users[user] {
		hist = append(hist, it.Object)
		seen[it.Object] = true
	}
	type scored struct {
		poi   int
		score float64
	}
	var candidates []scored
	for poi := 0; poi < ds.NumObjects; poi++ {
		if seen[poi] {
			continue // only recommend unvisited POIs
		}
		s := seqfm.Score(model, seqfm.Instance{
			User: user, Target: poi, Hist: hist, UserAttr: -1, TargetAttr: -1,
		})
		candidates = append(candidates, scored{poi, s})
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].score > candidates[j].score })
	fmt.Printf("user %d visited %d POIs; top-5 next-POI recommendations:\n", user, len(hist))
	for i := 0; i < 5 && i < len(candidates); i++ {
		fmt.Printf("  %d. POI %d (score %.3f)\n", i+1, candidates[i].poi, candidates[i].score)
	}
}

// datasetFromEvents groups raw events per user in timestamp order.
func datasetFromEvents(events []checkin, numUsers, numPOIs int) *seqfm.Dataset {
	sort.SliceStable(events, func(i, j int) bool { return events[i].ts < events[j].ts })
	users := make([][]seqfm.Interaction, numUsers)
	for _, e := range events {
		users[e.user] = append(users[e.user], seqfm.Interaction{
			Object: e.poi, Rating: 1, Time: e.ts,
		})
	}
	return &seqfm.Dataset{
		Name:       "foursquare-ingested",
		Task:       seqfm.Ranking,
		NumUsers:   numUsers,
		NumObjects: numPOIs,
		Users:      users,
	}
}
