package seqfm

import (
	"sync"

	"seqfm/internal/ag"
	"seqfm/internal/plan"
)

// The one-off Score facade used to build a fresh tape per call, which made
// casual scoring loops allocation-bound. Two layers fix that:
//
//   - inferenceTapes pools dropout-disabled tapes so the tape fallback reuses
//     node storage across calls;
//   - planCache memoises plan.Compile per model identity so compilable models
//     (anything exposing a core.ModelSpec) skip the tape entirely and score
//     through a pooled plan.Exec, exactly like the serving engine.
//
// A cached plan reads the model's parameter matrices by reference, so
// in-place weight updates (optimizer steps) are picked up without
// recompiling; a Clone is a new identity and compiles its own plan.
var inferenceTapes = sync.Pool{New: func() any { return ag.NewTape() }}

// newInferenceTape leases a dropout-disabled autodiff tape for one-off
// scoring from the public API. Return it with releaseInferenceTape.
func newInferenceTape() *ag.Tape { return inferenceTapes.Get().(*ag.Tape) }

// releaseInferenceTape resets the tape (keeping its node storage) and returns
// it to the pool.
func releaseInferenceTape(t *ag.Tape) {
	t.Reset()
	inferenceTapes.Put(t)
}

// planCacheCap bounds the facade's plan cache. One entry per live model
// identity is the expected population; hitting the cap at all means the
// caller churns through models, so the whole cache is dropped rather than
// tracking recency.
const planCacheCap = 64

var (
	planMu sync.Mutex
	// planCache maps a scorer identity to its compiled plan; a nil value
	// records that the scorer is known uncompilable (a baseline), so the
	// facade does not retry compilation on every call.
	planCache = make(map[Scorer]*plan.Plan)
)

// compiledFor returns the cached execution plan for m, compiling it on first
// sight. It returns nil for models without a compilable spec.
func compiledFor(m Scorer) *plan.Plan {
	planMu.Lock()
	defer planMu.Unlock()
	if pl, ok := planCache[m]; ok {
		return pl
	}
	if len(planCache) >= planCacheCap {
		planCache = make(map[Scorer]*plan.Plan)
	}
	pl, err := plan.For(m)
	if err != nil {
		pl = nil
	}
	planCache[m] = pl
	return pl
}
