package seqfm

import "seqfm/internal/ag"

// newInferenceTape builds a dropout-disabled autodiff tape for one-off
// scoring from the public API.
func newInferenceTape() *ag.Tape { return ag.NewTape() }
